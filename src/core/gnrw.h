#ifndef HISTWALK_CORE_GNRW_H_
#define HISTWALK_CORE_GNRW_H_

#include <unordered_map>
#include <vector>

#include "attr/grouping.h"
#include "core/circulation.h"
#include "core/walker.h"

// GroupBy Neighbors Random Walk (GNRW) — the paper's second contribution
// (section 4). A global groupby function partitions each node's neighbors
// into strata; on the incoming transition u -> v the walk circulates across
// strata (each not-yet-attempted stratum chosen with probability
// proportional to its remaining members) and without replacement inside
// each stratum. With groups aligned to the aggregate of interest the walk
// alternates between attribute regions instead of dwelling inside one
// homophilous cluster — the source of the Figure 9 gains.
//
// Semantics note. Algorithm 2 as printed selects each stratum exactly once
// per stratum round regardless of its size, which over-samples neighbors in
// small strata and would break the deg(v)/2|E| stationary distribution that
// Theorem 4 claims (a 1-vs-3 split would visit the singleton half the
// time). The prose in section 4.1 — step 4 resets the *global* b(u, v) only
// once it equals N(v) — and the Theorem 4 proof (every path block equally
// likely) pin down the intended behaviour, implemented here:
//
//  * a GLOBAL round of deg(v) draws covers every neighbor of v exactly once
//    (the same without-replacement guarantee as CNRW, which is what
//    preserves the stationary distribution);
//  * within a round, strata alternate: a stratum is not attempted twice in
//    a stratum cycle while another stratum with unconsumed members has not
//    been attempted, and stratum picks are size-proportional (Algorithm 2's
//    |Si|/|CS| rule, applied to remaining members).

namespace histwalk::core {

class GroupbyNeighborsWalk final : public Walker {
 public:
  // `grouping` must outlive the walker.
  GroupbyNeighborsWalk(access::NodeAccess* access,
                       const attr::Grouping* grouping, uint64_t seed);

  util::Status Reset(graph::NodeId start) override;
  util::Result<graph::NodeId> Step() override;
  std::string name() const override {
    return "GNRW(" + grouping_->name() + ")";
  }
  uint64_t HistoryBytes() const override;

  const attr::Grouping& grouping() const { return *grouping_; }

 private:
  // Two-level circulation state for one directed edge u -> v.
  struct EdgeState {
    bool initialized = false;
    // Non-empty strata of N(v); members[g] is progressively shuffled by
    // the incremental Fisher-Yates draws, next[g] is the per-stratum
    // without-replacement cursor (positions [0, next[g]) are consumed in
    // the current global round).
    std::vector<std::vector<graph::NodeId>> members;
    std::vector<uint32_t> next;
    // Strata attempted in the current stratum cycle.
    std::vector<bool> attempted;

    void Init(std::span<const graph::NodeId> neighbors,
              const attr::Grouping& grouping);
    graph::NodeId Draw(util::Random& rng);
    uint64_t MemoryBytes() const;
  };

  const attr::Grouping* grouping_;
  graph::NodeId previous_ = kNoPrevious;
  std::unordered_map<uint64_t, EdgeState> history_;
};

}  // namespace histwalk::core

#endif  // HISTWALK_CORE_GNRW_H_
