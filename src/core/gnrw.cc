#include "core/gnrw.h"

#include <algorithm>

namespace histwalk::core {

GroupbyNeighborsWalk::GroupbyNeighborsWalk(access::NodeAccess* access,
                                           const attr::Grouping* grouping,
                                           uint64_t seed)
    : Walker(access, seed), grouping_(grouping) {
  HW_CHECK(grouping_ != nullptr);
}

util::Status GroupbyNeighborsWalk::Reset(graph::NodeId start) {
  HW_RETURN_IF_ERROR(Walker::Reset(start));
  previous_ = kNoPrevious;
  std::unordered_map<uint64_t, EdgeState>().swap(history_);
  return util::Status::Ok();
}

void GroupbyNeighborsWalk::EdgeState::Init(
    std::span<const graph::NodeId> neighbors,
    const attr::Grouping& grouping) {
  // Partition N(v) by stratum label, keeping only non-empty strata. Labels
  // are dense (0..num_groups-1), so a direct-indexed scratch table works.
  std::vector<std::vector<graph::NodeId>> buckets(grouping.num_groups());
  for (graph::NodeId w : neighbors) {
    buckets[grouping.GroupOf(w)].push_back(w);
  }
  for (auto& bucket : buckets) {
    if (!bucket.empty()) members.push_back(std::move(bucket));
  }
  next.assign(members.size(), 0);
  attempted.assign(members.size(), false);
  initialized = true;
}

graph::NodeId GroupbyNeighborsWalk::EdgeState::Draw(util::Random& rng) {
  const size_t m = members.size();

  // Global round complete (every neighbor consumed once): start over.
  bool any_remaining = false;
  for (size_t g = 0; g < m; ++g) {
    if (next[g] < members[g].size()) {
      any_remaining = true;
      break;
    }
  }
  if (!any_remaining) {
    std::fill(next.begin(), next.end(), 0u);
    std::fill(attempted.begin(), attempted.end(), false);
  }

  // Stratum cycle: only strata with unconsumed members and not yet
  // attempted this cycle are candidates; when none are left, open a new
  // cycle over the strata that still have members.
  uint64_t candidate_weight = 0;  // total remaining members over candidates
  for (size_t g = 0; g < m; ++g) {
    if (!attempted[g] && next[g] < members[g].size()) {
      candidate_weight += members[g].size() - next[g];
    }
  }
  if (candidate_weight == 0) {
    std::fill(attempted.begin(), attempted.end(), false);
    for (size_t g = 0; g < m; ++g) {
      if (next[g] < members[g].size()) {
        candidate_weight += members[g].size() - next[g];
      }
    }
  }

  // Size-proportional stratum choice (Algorithm 2's |Si| / |CS|), over
  // remaining members so the global round stays uniform over N(v).
  uint64_t target = rng.UniformIndex(candidate_weight);
  size_t pick = m;
  for (size_t g = 0; g < m; ++g) {
    if (attempted[g] || next[g] >= members[g].size()) continue;
    uint64_t weight = members[g].size() - next[g];
    if (target < weight) {
      pick = g;
      break;
    }
    target -= weight;
  }
  HW_DCHECK(pick < m);
  attempted[pick] = true;

  // Within the stratum: uniform without replacement via incremental
  // Fisher-Yates (the b_Si bookkeeping of Algorithm 2).
  auto& bucket = members[pick];
  uint32_t span = static_cast<uint32_t>(bucket.size()) - next[pick];
  uint32_t j = next[pick] + rng.UniformInt(span);
  std::swap(bucket[next[pick]], bucket[j]);
  return bucket[next[pick]++];
}

uint64_t GroupbyNeighborsWalk::EdgeState::MemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  for (const auto& m : members) bytes += m.capacity() * sizeof(graph::NodeId);
  bytes += next.capacity() * sizeof(uint32_t);
  bytes += attempted.capacity() / 8;
  return bytes;
}

util::Result<graph::NodeId> GroupbyNeighborsWalk::Step() {
  if (current_ == graph::kInvalidNode) {
    return util::Status::FailedPrecondition("walker not reset");
  }
  HW_ASSIGN_OR_RETURN(auto neighbors, access_->Neighbors(current_));
  if (neighbors.empty()) {
    return util::Status::FailedPrecondition("walk reached isolated node");
  }

  graph::NodeId next;
  if (previous_ == kNoPrevious) {
    next = neighbors[rng_.UniformIndex(neighbors.size())];
  } else {
    EdgeState& state = history_[EdgeKey(previous_, current_)];
    if (!state.initialized) state.Init(neighbors, *grouping_);
    next = state.Draw(rng_);
  }
  previous_ = current_;
  current_ = next;
  return current_;
}

uint64_t GroupbyNeighborsWalk::HistoryBytes() const {
  uint64_t bytes = history_.bucket_count() * sizeof(void*);
  for (const auto& [key, state] : history_) {
    bytes += sizeof(key) + state.MemoryBytes();
  }
  return bytes;
}

}  // namespace histwalk::core
