#ifndef HISTWALK_CORE_METROPOLIS_HASTINGS_WALK_H_
#define HISTWALK_CORE_METROPOLIS_HASTINGS_WALK_H_

#include "core/walker.h"

// Metropolis-Hastings Random Walk (Hastings 1970; used for OSN sampling by
// Gjoka et al.). Proposes a uniform neighbor w of the current node v and
// accepts with probability min(1, deg(v) / deg(w)); on rejection the walk
// stays at v (a self-loop sample). Stationary distribution: uniform.
//
// The proposed neighbor's degree is read from the free response summary
// (see access/node_access.h), the most favorable cost model for MHRW; it
// still loses in the paper's experiments because it mixes slowly.

namespace histwalk::core {

class MetropolisHastingsWalk final : public Walker {
 public:
  MetropolisHastingsWalk(access::NodeAccess* access, uint64_t seed)
      : Walker(access, seed) {}

  util::Result<graph::NodeId> Step() override;
  std::string name() const override { return "MHRW"; }
  StationaryBias bias() const override { return StationaryBias::kUniform; }
};

}  // namespace histwalk::core

#endif  // HISTWALK_CORE_METROPOLIS_HASTINGS_WALK_H_
