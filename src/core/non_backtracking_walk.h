#ifndef HISTWALK_CORE_NON_BACKTRACKING_WALK_H_
#define HISTWALK_CORE_NON_BACKTRACKING_WALK_H_

#include "core/walker.h"

// Non-Backtracking Simple Random Walk (NB-SRW; Lee, Xu & Eun 2012), the
// order-2 state of the art the paper compares against: from transition
// u -> v the next node is uniform over N(v) \ {u}, falling back to u only
// when v has no other neighbor. Preserves pi(v) = deg(v) / 2|E| on
// non-bipartite graphs.

namespace histwalk::core {

class NonBacktrackingWalk final : public Walker {
 public:
  NonBacktrackingWalk(access::NodeAccess* access, uint64_t seed)
      : Walker(access, seed) {}

  util::Status Reset(graph::NodeId start) override;
  util::Result<graph::NodeId> Step() override;
  std::string name() const override { return "NB-SRW"; }

 private:
  graph::NodeId previous_ = graph::kInvalidNode;
};

}  // namespace histwalk::core

#endif  // HISTWALK_CORE_NON_BACKTRACKING_WALK_H_
