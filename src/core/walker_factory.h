#ifndef HISTWALK_CORE_WALKER_FACTORY_H_
#define HISTWALK_CORE_WALKER_FACTORY_H_

#include <memory>
#include <string>

#include "attr/grouping.h"
#include "core/walker.h"

// Uniform construction of every sampler in the library; experiment configs
// hold WalkerSpecs so a single harness can sweep all algorithms.

namespace histwalk::core {

enum class WalkerType {
  kSrw,       // Simple Random Walk (baseline)
  kMhrw,      // Metropolis-Hastings Random Walk
  kNbSrw,     // Non-backtracking SRW (order-2 state of the art)
  kCnrw,      // Circulated Neighbors RW (this paper)
  kCnrwNode,  // node-based circulation (section 3.2 ablation)
  kNbCnrw,    // CNRW on top of NB-SRW (section 5)
  kGnrw,      // GroupBy Neighbors RW (this paper); requires a grouping
};

// Stable display name ("SRW", "CNRW", ...).
std::string WalkerTypeName(WalkerType type);

struct WalkerSpec {
  WalkerType type = WalkerType::kSrw;
  // Required for kGnrw, ignored otherwise; must outlive created walkers.
  const attr::Grouping* grouping = nullptr;
  // Optional display-name override for reports.
  std::string label;

  std::string DisplayName() const;
};

// Creates a walker bound to `access`; `seed` fully determines its draws.
util::Result<std::unique_ptr<Walker>> MakeWalker(const WalkerSpec& spec,
                                                 access::NodeAccess* access,
                                                 uint64_t seed);

}  // namespace histwalk::core

#endif  // HISTWALK_CORE_WALKER_FACTORY_H_
