#ifndef HISTWALK_CORE_WALKER_FACTORY_H_
#define HISTWALK_CORE_WALKER_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "access/shared_access.h"
#include "attr/grouping.h"
#include "core/walker.h"

// Uniform construction of every sampler in the library; experiment configs
// hold WalkerSpecs so a single harness can sweep all algorithms.

namespace histwalk::core {

enum class WalkerType {
  kSrw,       // Simple Random Walk (baseline)
  kMhrw,      // Metropolis-Hastings Random Walk
  kNbSrw,     // Non-backtracking SRW (order-2 state of the art)
  kCnrw,      // Circulated Neighbors RW (this paper)
  kCnrwNode,  // node-based circulation (section 3.2 ablation)
  kNbCnrw,    // CNRW on top of NB-SRW (section 5)
  kGnrw,      // GroupBy Neighbors RW (this paper); requires a grouping
};

// Stable display name ("SRW", "CNRW", ...).
std::string WalkerTypeName(WalkerType type);

struct WalkerSpec {
  WalkerType type = WalkerType::kSrw;
  // Required for kGnrw, ignored otherwise; must outlive created walkers.
  const attr::Grouping* grouping = nullptr;
  // Optional display-name override for reports.
  std::string label;

  std::string DisplayName() const;
};

// Creates a walker bound to `access`; `seed` fully determines its draws.
util::Result<std::unique_ptr<Walker>> MakeWalker(const WalkerSpec& spec,
                                                 access::NodeAccess* access,
                                                 uint64_t seed);

// One member of a concurrent ensemble: a per-walker view of the shared
// history plus the walker bound to it (the view must outlive the walker,
// so they travel together).
struct EnsembleMember {
  std::unique_ptr<access::SharedAccess> access;
  std::unique_ptr<Walker> walker;
};

// Mints `count` members drawing from `group`'s shared cache. Member i's
// walker is seeded with SubSeed(seed, i), so the ensemble is reproducible
// bit-for-bit regardless of how members are later scheduled onto threads.
// `group` must outlive the members.
util::Result<std::vector<EnsembleMember>> MakeEnsemble(
    const WalkerSpec& spec, access::SharedAccessGroup& group, uint32_t count,
    uint64_t seed);

}  // namespace histwalk::core

#endif  // HISTWALK_CORE_WALKER_FACTORY_H_
