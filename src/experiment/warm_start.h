#ifndef HISTWALK_EXPERIMENT_WARM_START_H_
#define HISTWALK_EXPERIMENT_WARM_START_H_

#include <string>
#include <vector>

#include "core/walker_factory.h"
#include "experiment/datasets.h"
#include "experiment/error_curve.h"
#include "net/latency_model.h"
#include "obs/registry.h"
#include "util/table.h"

// The persistence experiment: what does YESTERDAY'S crawl buy TODAY'S?
//
// Phase 1 (warm-up) runs an ensemble crawl over the dataset behind a
// latency-modelled remote service and persists the resulting HistoryCache
// through a real store snapshot on disk. Phase 2 runs a SECOND, independent
// sampling task (fresh seeds — a different question asked of the same
// network) twice per step budget: cold (empty cache) and warm (cache
// restored from the snapshot).
//
// Because walker traces never depend on cache state (the runner's
// determinism contract), the cold and warm runs produce bit-identical
// samples and therefore identical estimation error; what changes is the
// bill: the warm crawl re-fetches nothing the snapshot already holds, so
// it issues strictly fewer wire requests and finishes in less simulated
// wall-clock at the SAME error — the paper's "history is an asset" claim,
// measured across process lifetimes instead of within one walk.

namespace histwalk::experiment {

struct WarmStartConfig {
  core::WalkerSpec walker;
  // Phase-2 sweep: per-walker step budgets for the measured crawl.
  std::vector<uint64_t> step_budgets = {100, 200, 400};
  uint32_t ensemble_size = 8;
  // Phase-1 warm-up crawl length per walker.
  uint64_t warmup_steps = 600;
  uint32_t trials = 3;
  uint64_t seed = 1;
  uint32_t pipeline_depth = 4;
  uint32_t max_batch = 8;
  uint32_t cache_shards = 8;
  // Wire model (per-trial seeds derive from `seed`; max_in_flight is set
  // to pipeline_depth).
  net::LatencyModelOptions latency;
  EstimandSpec estimand;
  // Snapshot file the warmed history round-trips through; "" = a file in
  // the system temp directory derived from `seed`. The file is rewritten
  // per trial.
  std::string snapshot_path;
  // Optional metrics registry every crawl (warm-up and measured, across
  // all trials) reports into, so one scrape attributes the experiment's
  // whole miss traffic across memory / store / wire. Null = none wired.
  obs::Registry* registry = nullptr;
};

// One step-budget row, averaged over trials. Cold/warm pairs share seeds,
// so *_relative_error are equal by construction (asserted by the tests);
// the wire columns are where history pays.
struct WarmStartPoint {
  uint64_t steps_per_walker = 0;
  double cold_relative_error = 0.0;
  double warm_relative_error = 0.0;
  double cold_wire_requests = 0.0;
  double warm_wire_requests = 0.0;
  double cold_charged_queries = 0.0;
  double warm_charged_queries = 0.0;
  double cold_sim_wall_seconds = 0.0;
  double warm_sim_wall_seconds = 0.0;
  // 1 - warm/cold wire requests: fraction of the service bill history paid.
  double wire_savings = 0.0;
};

struct WarmStartResult {
  std::string dataset_name;
  std::string walker_name;
  std::string estimand_name;
  double ground_truth = 0.0;
  // Snapshot stats from the last trial's warm-up (entries / bytes).
  uint64_t snapshot_entries = 0;
  uint64_t snapshot_file_bytes = 0;
  std::vector<WarmStartPoint> points;  // one per step budget
};

WarmStartResult RunWarmStart(const Dataset& dataset,
                             const WarmStartConfig& config);

// steps rows with paired cold/warm error, wire, charge and wall columns.
util::TextTable WarmStartTable(const WarmStartResult& result);

}  // namespace histwalk::experiment

#endif  // HISTWALK_EXPERIMENT_WARM_START_H_
