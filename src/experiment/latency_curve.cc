#include "experiment/latency_curve.h"

#include "api/sampler.h"
#include "metrics/divergence.h"
#include "util/random.h"

namespace histwalk::experiment {

LatencyCurveResult RunLatencyCurve(const Dataset& dataset,
                                   const LatencyCurveConfig& config) {
  HW_CHECK(!config.pipeline_depths.empty());
  HW_CHECK(!config.ensemble_sizes.empty());
  HW_CHECK(config.steps_per_walker > 0);
  HW_CHECK(config.trials > 0);

  LatencyCurveResult result;
  result.dataset_name = dataset.name;
  result.walker_name = config.walker.DisplayName();
  result.estimand_name = config.estimand.DisplayName();

  if (!config.estimand.attribute.empty()) {
    auto found = dataset.attributes.Find(config.estimand.attribute);
    HW_CHECK_MSG(found.ok(), "estimand attribute missing from dataset");
    result.ground_truth = dataset.attributes.Mean(*found);
  } else {
    result.ground_truth = dataset.graph.AverageDegree();
  }

  for (size_t e = 0; e < config.ensemble_sizes.size(); ++e) {
    const uint32_t size = config.ensemble_sizes[e];
    double baseline_wall = 0.0;
    for (size_t d = 0; d < config.pipeline_depths.size(); ++d) {
      const uint32_t depth = config.pipeline_depths[d];
      LatencyCurvePoint point;
      point.pipeline_depth = depth;
      point.ensemble_size = size;

      double err_sum = 0.0;
      uint64_t err_count = 0;
      for (uint32_t trial = 0; trial < config.trials; ++trial) {
        // Each trial draws its own wire seed, but WITHIN a trial the seed
        // is identical across depths: only in-flight slots and request
        // order differ between cells of a sweep, keeping the time axis
        // comparable.
        net::LatencyModelOptions latency = config.latency;
        latency.seed = util::SubSeed(config.seed, 0x11a7 + trial);
        latency.max_in_flight = depth;

        api::SamplerBuilder builder;
        builder.OverGraph(&dataset.graph, &dataset.attributes)
            .WithRemoteWire(latency)
            .WithCache({.capacity = config.cache_capacity,
                        .num_shards = config.cache_shards})
            .RunPipelined({.depth = depth, .max_batch = config.max_batch})
            .WithWalker(config.walker)
            .WithEnsemble(size, util::SubSeed(config.seed,
                                              (e + 1) * 1'000'003ull + trial))
            .StopAfterSteps(config.steps_per_walker);
        if (config.estimand.attribute.empty()) {
          builder.EstimateAverageDegree();
        } else {
          builder.EstimateAttributeMean(config.estimand.attribute);
        }
        auto sampler = builder.Build();
        HW_CHECK_MSG(sampler.ok(), "latency curve sampler build failed");
        auto handle = (*sampler)->Run();
        HW_CHECK_MSG(handle.ok(), "async ensemble run failed");
        auto run = handle->Wait();
        HW_CHECK_MSG(run.ok(), "async ensemble run failed");

        if (run->has_estimate) {
          err_sum +=
              metrics::RelativeError(run->estimate, result.ground_truth);
          ++err_count;
        }
        point.mean_sim_wall_seconds +=
            static_cast<double>(run->sim_wall_us) / 1e6;
        point.mean_charged_queries +=
            static_cast<double>(run->charged_queries);
        point.mean_wire_requests +=
            static_cast<double>(run->ensemble.pipeline_stats.wire_requests);
        point.mean_batch_size += run->ensemble.pipeline_stats.MeanBatchSize();
        point.mean_dedup_joins +=
            static_cast<double>(run->ensemble.pipeline_stats.dedup_joins);
      }
      double trials = static_cast<double>(config.trials);
      point.mean_relative_error =
          err_count == 0 ? 0.0 : err_sum / static_cast<double>(err_count);
      point.mean_sim_wall_seconds /= trials;
      point.mean_charged_queries /= trials;
      point.mean_wire_requests /= trials;
      point.mean_batch_size /= trials;
      point.mean_dedup_joins /= trials;
      if (d == 0) baseline_wall = point.mean_sim_wall_seconds;
      point.speedup_vs_baseline =
          point.mean_sim_wall_seconds > 0.0
              ? baseline_wall / point.mean_sim_wall_seconds
              : 1.0;
      result.points.push_back(point);
    }
  }
  return result;
}

util::TextTable LatencyCurveTable(const LatencyCurveResult& result) {
  util::TextTable table({"walkers", "depth", "rel_error", "sim_wall_s",
                         "speedup", "charged_queries", "wire_requests",
                         "mean_batch", "dedup_joins"});
  for (const LatencyCurvePoint& point : result.points) {
    table.AddRow({util::TextTable::Cell(uint64_t{point.ensemble_size}),
                  util::TextTable::Cell(uint64_t{point.pipeline_depth}),
                  util::TextTable::Cell(point.mean_relative_error),
                  util::TextTable::Cell(point.mean_sim_wall_seconds),
                  util::TextTable::Cell(point.speedup_vs_baseline),
                  util::TextTable::Cell(point.mean_charged_queries, 6),
                  util::TextTable::Cell(point.mean_wire_requests, 6),
                  util::TextTable::Cell(point.mean_batch_size, 3),
                  util::TextTable::Cell(point.mean_dedup_joins, 3)});
  }
  return table;
}

}  // namespace histwalk::experiment
