#include "experiment/datasets.h"

#include "attr/synthesis.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/random.h"

namespace histwalk::experiment {

namespace {

// Attaches the standard homophilous "age" column; Yelp also gets the
// heavy-tailed "reviews_count" used by Figure 9.
void AddStandardAttributes(Dataset& dataset, bool with_reviews,
                           util::Random& rng) {
  dataset.attributes =
      attr::AttributeTable(dataset.graph.num_nodes());
  attr::HomophilyParams params;
  params.rounds = 3;
  params.mix = 0.7;
  params.noise_stddev = 0.3;
  {
    std::vector<double> age_field =
        attr::MakeHomophilousAttribute(dataset.graph, params, rng);
    // Map the standardized field into a plausible 18..80 age range.
    for (double& v : age_field) {
      v = 40.0 + 12.0 * v;
      if (v < 18.0) v = 18.0;
      if (v > 80.0) v = 80.0;
    }
    auto added = dataset.attributes.AddColumn("age", std::move(age_field));
    HW_CHECK(added.ok());
  }
  if (with_reviews) {
    std::vector<double> reviews = attr::MakeHeavyTailedAttribute(
        dataset.graph, params, /*scale=*/20.0, rng);
    auto added =
        dataset.attributes.AddColumn("reviews_count", std::move(reviews));
    HW_CHECK(added.ok());
  }
}

Dataset BuildSurrogate(std::string name, std::string note,
                       const graph::SocialSurrogateParams& params,
                       bool with_reviews, uint64_t seed) {
  Dataset dataset;
  dataset.name = std::move(name);
  dataset.note = std::move(note);
  util::Random rng(seed);
  graph::Graph raw = graph::MakeSocialSurrogate(params, rng);
  dataset.graph = graph::LargestComponent(raw);
  AddStandardAttributes(dataset, with_reviews, rng);
  return dataset;
}

Dataset BuildExact(std::string name, std::string note, graph::Graph graph,
                   uint64_t seed) {
  Dataset dataset;
  dataset.name = std::move(name);
  dataset.note = std::move(note);
  dataset.graph = std::move(graph);
  util::Random rng(seed);
  AddStandardAttributes(dataset, /*with_reviews=*/false, rng);
  return dataset;
}

}  // namespace

std::vector<DatasetId> AllDatasetIds() {
  return {DatasetId::kFacebook, DatasetId::kGPlus,    DatasetId::kYelp,
          DatasetId::kYoutube,  DatasetId::kClustered, DatasetId::kBarbell};
}

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kFacebook:
      return "facebook";
    case DatasetId::kFacebook2:
      return "facebook2";
    case DatasetId::kGPlus:
      return "gplus";
    case DatasetId::kYelp:
      return "yelp";
    case DatasetId::kYoutube:
      return "youtube";
    case DatasetId::kClustered:
      return "clustered";
    case DatasetId::kBarbell:
      return "barbell";
  }
  return "unknown";
}

Dataset BuildDataset(DatasetId id, uint64_t seed) {
  switch (id) {
    case DatasetId::kFacebook: {
      // Paper: 775 nodes, 14006 edges, avg degree 36.1, clustering 0.47.
      graph::SocialSurrogateParams params;
      params.num_nodes = 790;  // LCC extraction trims a few nodes
      params.community_size = 27.0;
      params.p_intra = 0.55;
      params.background_degree = 8.0;
      params.power_law_alpha = 2.4;
      params.max_weight_fraction = 0.08;
      return BuildSurrogate(
          "facebook",
          "surrogate for the SNAP Facebook ego net 1684 (775 nodes)", params,
          /*with_reviews=*/false, util::SubSeed(seed, 1));
    }
    case DatasetId::kFacebook2: {
      // Second ego-net-like graph for Figure 8(b)/(d); sparser, ~800 nodes.
      graph::SocialSurrogateParams params;
      params.num_nodes = 820;
      params.community_size = 22.0;
      params.p_intra = 0.45;
      params.background_degree = 6.0;
      params.power_law_alpha = 2.6;
      params.max_weight_fraction = 0.06;
      return BuildSurrogate("facebook2",
                            "second Facebook-ego-net-like surrogate", params,
                            /*with_reviews=*/false, util::SubSeed(seed, 2));
    }
    case DatasetId::kGPlus: {
      // Paper: 240k nodes, 30.8M edges, avg degree 256, clustering 0.51.
      // Scaled to 60k nodes / avg degree ~128 for the 2-core CI budget; the
      // degree-heterogeneity + clustering regime is preserved.
      graph::SocialSurrogateParams params;
      params.num_nodes = 60'000;
      params.community_size = 70.0;
      params.p_intra = 0.5;
      params.background_degree = 60.0;
      params.power_law_alpha = 2.2;
      params.max_weight_fraction = 0.02;
      return BuildSurrogate(
          "gplus",
          "Google Plus surrogate, SCALED from 240k nodes/avg-deg 256 to "
          "60k/~128",
          params, /*with_reviews=*/false, util::SubSeed(seed, 3));
    }
    case DatasetId::kYelp: {
      // Paper: 119,839 nodes, 954,116 edges, avg degree 15.9, cc 0.12.
      graph::SocialSurrogateParams params;
      params.num_nodes = 120'000;
      params.community_size = 11.0;
      params.p_intra = 0.32;
      params.background_degree = 10.0;
      params.power_law_alpha = 2.3;
      params.max_weight_fraction = 0.01;
      return BuildSurrogate("yelp",
                            "Yelp dataset-challenge surrogate (LCC, ~120k "
                            "nodes) with homophilous reviews_count",
                            params, /*with_reviews=*/true,
                            util::SubSeed(seed, 4));
    }
    case DatasetId::kYoutube: {
      // Paper: 1.13M nodes, 2.99M edges, avg degree 5.3, cc 0.08. Scaled to
      // 200k nodes at the same average degree / clustering regime.
      graph::SocialSurrogateParams params;
      params.num_nodes = 200'000;
      params.community_size = 5.0;
      params.p_intra = 0.4;
      params.background_degree = 3.4;
      params.power_law_alpha = 2.1;
      params.max_weight_fraction = 0.005;
      return BuildSurrogate(
          "youtube",
          "SNAP YouTube surrogate, SCALED from 1.13M nodes to 200k "
          "(same avg degree)",
          params, /*with_reviews=*/false, util::SubSeed(seed, 5));
    }
    case DatasetId::kClustered:
      // Exact topology: cliques of 10/30/50 nodes chained by bridge edges
      // (90 nodes, 1707 edges — Table 1's "Clustering graph").
      return BuildExact("clustered",
                        "exact synthetic topology (cliques 10/30/50)",
                        graph::MakeCliqueChain({10, 30, 50}),
                        util::SubSeed(seed, 6));
    case DatasetId::kBarbell:
      // Exact topology: two K_50 halves + bridge (100 nodes, 2451 edges).
      return BuildExact("barbell", "exact synthetic topology (two K_50)",
                        graph::MakeBarbell(50), util::SubSeed(seed, 7));
  }
  HW_CHECK_MSG(false, "unknown dataset id");
  return {};
}

}  // namespace histwalk::experiment
