#include "experiment/bias_curve.h"

#include <algorithm>
#include <mutex>

#include "access/graph_access.h"
#include "estimate/estimators.h"
#include "estimate/walk_runner.h"
#include "metrics/distribution.h"
#include "metrics/divergence.h"
#include "util/parallel.h"

namespace histwalk::experiment {

BiasCurveResult RunBiasCurve(const Dataset& dataset,
                             const BiasCurveConfig& config) {
  HW_CHECK(!config.walkers.empty());
  HW_CHECK(!config.budgets.empty());
  HW_CHECK(std::is_sorted(config.budgets.begin(), config.budgets.end()));
  if (!config.measure_values.empty()) {
    HW_CHECK(config.measure_values.size() == dataset.graph.num_nodes());
  }

  BiasCurveResult result;
  result.dataset_name = dataset.name;
  result.budgets = config.budgets;

  const uint64_t n = dataset.graph.num_nodes();
  const bool degree_estimand = config.measure_values.empty();
  const double truth = degree_estimand ? dataset.graph.AverageDegree()
                                       : config.measure_truth;
  const std::vector<double> target =
      metrics::StationaryDistribution(dataset.graph);
  const uint64_t max_budget = config.budgets.back();
  const size_t num_budgets = config.budgets.size();

  for (size_t w = 0; w < config.walkers.size(); ++w) {
    const core::WalkerSpec& spec = config.walkers[w];
    result.walker_names.push_back(spec.DisplayName());

    std::vector<double> kl_sum(num_budgets, 0.0);
    std::vector<double> l2_sum(num_budgets, 0.0);
    std::vector<double> err_sum(num_budgets, 0.0);
    std::vector<uint64_t> count(num_budgets, 0);
    std::mutex mu;

    util::ParallelFor(config.instances, [&](size_t instance) {
      graph::NodeId start = config.fixed_start;
      if (start == graph::kInvalidNode) {
        util::Random start_rng(util::SubSeed(config.seed, instance));
        start = static_cast<graph::NodeId>(start_rng.UniformIndex(n));
      }

      access::GraphAccess access(&dataset.graph, &dataset.attributes, {});
      uint64_t walker_seed =
          util::SubSeed(config.seed, (w + 1) * 1'000'003ull + instance);
      auto walker = core::MakeWalker(spec, &access, walker_seed);
      HW_CHECK(walker.ok());
      HW_CHECK((*walker)->Reset(start).ok());

      estimate::TracedWalk trace =
          estimate::TraceWalk(**walker, {.max_steps = max_budget});

      // Per-budget, per-walk measures (computed outside the lock).
      std::vector<double> kl(num_budgets, 0.0), l2(num_budgets, 0.0),
          err(num_budgets, 0.0);
      metrics::VisitCounter counter(n);
      uint64_t consumed = 0;
      for (size_t b = 0; b < num_budgets; ++b) {
        uint64_t steps =
            std::min<uint64_t>(config.budgets[b], trace.num_steps());
        // The counter accumulates; add only the new steps of this prefix.
        for (uint64_t t = consumed; t < steps; ++t) {
          counter.Add(trace.nodes[t]);
        }
        consumed = steps;
        std::vector<double> empirical = counter.Probabilities();
        kl[b] = metrics::SymmetrizedKlDivergence(empirical, target,
                                                 config.kl_smoothing);
        l2[b] = metrics::L2Distance(empirical, target);

        double estimate;
        if (degree_estimand) {
          estimate = estimate::EstimateAverageDegree(
              std::span<const uint32_t>(trace.degrees).first(steps),
              (*walker)->bias());
        } else {
          std::vector<double> f(steps);
          for (uint64_t t = 0; t < steps; ++t) {
            f[t] = config.measure_values[trace.nodes[t]];
          }
          estimate = estimate::EstimateMean(
              f, std::span<const uint32_t>(trace.degrees).first(steps),
              (*walker)->bias());
        }
        err[b] = metrics::RelativeError(estimate, truth);
      }

      std::lock_guard<std::mutex> lock(mu);
      for (size_t b = 0; b < num_budgets; ++b) {
        kl_sum[b] += kl[b];
        l2_sum[b] += l2[b];
        err_sum[b] += err[b];
        ++count[b];
      }
    });

    std::vector<double> kl(num_budgets, 0.0), l2(num_budgets, 0.0),
        err(num_budgets, 0.0);
    for (size_t b = 0; b < num_budgets; ++b) {
      if (count[b] == 0) continue;
      double c = static_cast<double>(count[b]);
      kl[b] = kl_sum[b] / c;
      l2[b] = l2_sum[b] / c;
      err[b] = err_sum[b] / c;
    }
    result.kl_divergence.push_back(std::move(kl));
    result.l2_distance.push_back(std::move(l2));
    result.relative_error.push_back(std::move(err));
  }
  return result;
}

}  // namespace histwalk::experiment
