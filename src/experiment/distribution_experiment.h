#ifndef HISTWALK_EXPERIMENT_DISTRIBUTION_EXPERIMENT_H_
#define HISTWALK_EXPERIMENT_DISTRIBUTION_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/walker_factory.h"
#include "experiment/datasets.h"

// The Figure 8 experiment: verify that SRW, CNRW and GNRW converge to the
// same stationary distribution. The paper runs 100 instances of each walk
// for 10000 steps, pools the samples, orders nodes by degree and plots the
// empirical sampling distribution against the theoretical deg(v)/2|E|
// curve. The text rendering bins the degree-ordered axis and also reports
// whole-distribution agreement (total variation and symmetrized KL).

namespace histwalk::experiment {

struct DistributionConfig {
  std::vector<core::WalkerSpec> walkers;
  uint32_t instances = 100;   // paper: 100 walks
  uint64_t steps = 10'000;    // paper: 10000 steps each
  uint32_t num_bins = 16;     // degree-ordered bins for the printed series
  uint64_t seed = 1;
};

struct DistributionResult {
  std::string dataset_name;
  std::vector<std::string> walker_names;
  // Binned sampling probability along the degree-ordered axis: bin b
  // averages pi(v) over the b-th slice of nodes sorted by degree.
  std::vector<double> theoretical_binned;           // [bin]
  std::vector<std::vector<double>> empirical_binned;  // [walker][bin]
  // Whole-distribution agreement with deg(v)/2|E| per walker.
  std::vector<double> total_variation;  // [walker]
  std::vector<double> symmetric_kl;     // [walker]
};

DistributionResult RunDistributionExperiment(const Dataset& dataset,
                                             const DistributionConfig& config);

}  // namespace histwalk::experiment

#endif  // HISTWALK_EXPERIMENT_DISTRIBUTION_EXPERIMENT_H_
