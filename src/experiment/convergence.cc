#include "experiment/convergence.h"

#include <filesystem>

#include "api/sampler.h"
#include "util/random.h"

namespace histwalk::experiment {
namespace {

struct MeasuredRun {
  uint64_t steps = 0;  // total across the ensemble
  uint64_t charged_queries = 0;
  uint64_t sim_wall_us = 0;
  double achieved_ci = 0.0;
  bool hit_target = false;
};

}  // namespace

ConvergenceResult RunConvergence(const Dataset& dataset,
                                 const ConvergenceConfig& config) {
  HW_CHECK(!config.ci_targets.empty());
  HW_CHECK(config.trials > 0);
  HW_CHECK(config.warmup_steps > 0);
  HW_CHECK(config.max_steps > 0);

  ConvergenceResult result;
  result.dataset_name = dataset.name;
  result.walker_name = config.walker.DisplayName();
  result.estimand_name = config.estimand.DisplayName();

  if (!config.estimand.attribute.empty()) {
    auto found = dataset.attributes.Find(config.estimand.attribute);
    HW_CHECK_MSG(found.ok(), "estimand attribute missing from dataset");
    result.ground_truth = dataset.attributes.Mean(*found);
  } else {
    result.ground_truth = dataset.graph.AverageDegree();
  }

  std::string snapshot_path = config.snapshot_path;
  if (snapshot_path.empty()) {
    snapshot_path = (std::filesystem::temp_directory_path() /
                     ("histwalk_convergence_" + std::to_string(config.seed) +
                      ".hwss"))
                        .string();
  }

  // The pipelined crawl stack both phases share; only the store options
  // (absent / save-only / warm-start) and seeds differ per use.
  auto base_builder = [&](const net::LatencyModelOptions& latency) {
    api::SamplerBuilder builder;
    builder.OverGraph(&dataset.graph, &dataset.attributes)
        .WithRemoteWire(latency)
        .WithCache({.num_shards = config.cache_shards})
        .RunPipelined(
            {.depth = config.pipeline_depth, .max_batch = config.max_batch})
        .WithWalker(config.walker)
        .WithEnsemble(config.ensemble_size, /*seed=*/1)
        .StopAfterSteps(config.warmup_steps);
    if (config.estimand.attribute.empty()) {
      builder.EstimateAverageDegree();
    } else {
      builder.EstimateAttributeMean(config.estimand.attribute);
    }
    if (config.registry != nullptr) {
      builder.WithObservability({.registry = config.registry});
    }
    return builder;
  };

  // One adaptive-stop measurement crawl: the walkers run until the online
  // CI half-width crosses `target` (or the max_steps safety cap), over
  // whatever cache state the builder arranged (cold or warm-started).
  auto measure = [&](api::SamplerBuilder builder, double target,
                     uint64_t run_seed) {
    auto sampler = builder.Build();
    HW_CHECK_MSG(sampler.ok(), "convergence sampler build failed");
    HW_CHECK_MSG((*sampler)->warm_start_status().ok(),
                 "convergence snapshot load failed");
    api::RunOptions run_options = (*sampler)->default_run_options();
    run_options.seed = run_seed;
    run_options.max_steps = config.max_steps;
    run_options.progress_interval = config.progress_interval;
    run_options.stop_at_ci_half_width = target;
    auto handle = (*sampler)->Run(run_options);
    HW_CHECK_MSG(handle.ok(), "convergence run failed");
    auto run = handle->Wait();
    HW_CHECK_MSG(run.ok(), "convergence run failed");
    MeasuredRun measured;
    for (const auto& trace : run->ensemble.traces) {
      measured.steps += trace.num_steps();
    }
    measured.charged_queries = run->charged_queries;
    measured.sim_wall_us = run->sim_wall_us;
    measured.achieved_ci = run->ci_half_width;
    measured.hit_target = run->stopped_at_ci_target;
    return measured;
  };

  result.points.resize(config.ci_targets.size());
  for (size_t p = 0; p < config.ci_targets.size(); ++p) {
    result.points[p].ci_target = config.ci_targets[p];
  }

  for (uint32_t trial = 0; trial < config.trials; ++trial) {
    // ---- phase 1: warm-up crawl, persisted through the store ------------
    net::LatencyModelOptions latency = config.latency;
    latency.seed = util::SubSeed(config.seed, 0x6b21 + trial);
    latency.max_in_flight = config.pipeline_depth;
    {
      auto warmup = base_builder(latency).WithHistoryStore(
          store::HistoryStoreOptions{
              .snapshot_path = snapshot_path,
              // Save-only: the warm-up crawl is always cold, even when an
              // earlier trial already wrote the snapshot it overwrites.
              .load_snapshot = false,
              .checkpoint_wal_bytes = 0});
      auto sampler = warmup.Build();
      HW_CHECK_MSG(sampler.ok(), "warm-up sampler build failed");
      auto handle = (*sampler)->Run({.walker = config.walker,
                                     .num_walkers = config.ensemble_size,
                                     .seed = util::SubSeed(config.seed,
                                                           0x19d3 + trial),
                                     .max_steps = config.warmup_steps});
      HW_CHECK_MSG(handle.ok() && handle->Wait().ok(), "warm-up crawl failed");
      HW_CHECK_MSG((*sampler)->SaveHistory().ok(),
                   "convergence snapshot write failed");
      result.snapshot_entries = (*sampler)->group()->cache().stats().entries;
      std::error_code ec;
      const auto file_bytes = std::filesystem::file_size(snapshot_path, ec);
      result.snapshot_file_bytes = ec ? 0 : file_bytes;
    }

    // ---- phase 2: race to the CI target, cold vs warm -------------------
    const uint64_t task_seed = util::SubSeed(config.seed, 0x4e8f + trial);
    for (size_t p = 0; p < config.ci_targets.size(); ++p) {
      const double target = config.ci_targets[p];
      ConvergencePoint& point = result.points[p];

      MeasuredRun cold = measure(base_builder(latency), target, task_seed);
      MeasuredRun warm = measure(
          base_builder(latency).WithHistoryStore(store::HistoryStoreOptions{
              .snapshot_path = snapshot_path, .checkpoint_wal_bytes = 0}),
          target, task_seed);

      point.cold_steps += static_cast<double>(cold.steps);
      point.warm_steps += static_cast<double>(warm.steps);
      point.cold_charged_queries += static_cast<double>(cold.charged_queries);
      point.warm_charged_queries += static_cast<double>(warm.charged_queries);
      point.cold_sim_wall_seconds += cold.sim_wall_us / 1e6;
      point.warm_sim_wall_seconds += warm.sim_wall_us / 1e6;
      point.cold_achieved_ci += cold.achieved_ci;
      point.warm_achieved_ci += warm.achieved_ci;
      if (cold.hit_target) point.cold_hit_fraction += 1.0;
      if (warm.hit_target) point.warm_hit_fraction += 1.0;
    }
  }

  const double trials = static_cast<double>(config.trials);
  for (ConvergencePoint& point : result.points) {
    point.cold_steps /= trials;
    point.warm_steps /= trials;
    point.cold_charged_queries /= trials;
    point.warm_charged_queries /= trials;
    point.cold_sim_wall_seconds /= trials;
    point.warm_sim_wall_seconds /= trials;
    point.cold_achieved_ci /= trials;
    point.warm_achieved_ci /= trials;
    point.cold_hit_fraction /= trials;
    point.warm_hit_fraction /= trials;
    point.charged_savings =
        point.cold_charged_queries > 0.0
            ? 1.0 - point.warm_charged_queries / point.cold_charged_queries
            : 0.0;
  }
  return result;
}

util::TextTable ConvergenceTable(const ConvergenceResult& result) {
  util::TextTable table({"target_ci", "steps_cold", "steps_warm",
                         "charged_cold", "charged_warm", "saved",
                         "wall_cold_s", "wall_warm_s", "ci_cold", "ci_warm",
                         "hit_cold", "hit_warm"});
  for (const ConvergencePoint& point : result.points) {
    table.AddRow({util::TextTable::Cell(point.ci_target),
                  util::TextTable::Cell(point.cold_steps, 6),
                  util::TextTable::Cell(point.warm_steps, 6),
                  util::TextTable::Cell(point.cold_charged_queries, 6),
                  util::TextTable::Cell(point.warm_charged_queries, 6),
                  util::TextTable::Cell(point.charged_savings),
                  util::TextTable::Cell(point.cold_sim_wall_seconds),
                  util::TextTable::Cell(point.warm_sim_wall_seconds),
                  util::TextTable::Cell(point.cold_achieved_ci),
                  util::TextTable::Cell(point.warm_achieved_ci),
                  util::TextTable::Cell(point.cold_hit_fraction),
                  util::TextTable::Cell(point.warm_hit_fraction)});
  }
  return table;
}

}  // namespace histwalk::experiment
