#include "experiment/ensemble_curve.h"

#include "api/sampler.h"
#include "metrics/divergence.h"
#include "util/random.h"

namespace histwalk::experiment {

EnsembleCurveResult RunEnsembleCurve(const Dataset& dataset,
                                     const EnsembleCurveConfig& config) {
  HW_CHECK(!config.ensemble_sizes.empty());
  HW_CHECK(config.steps_per_walker > 0);
  HW_CHECK(config.trials > 0);

  EnsembleCurveResult result;
  result.dataset_name = dataset.name;
  result.walker_name = config.walker.DisplayName();
  result.estimand_name = config.estimand.DisplayName();
  result.ensemble_sizes = config.ensemble_sizes;

  if (!config.estimand.attribute.empty()) {
    auto found = dataset.attributes.Find(config.estimand.attribute);
    HW_CHECK_MSG(found.ok(), "estimand attribute missing from dataset");
    result.ground_truth = dataset.attributes.Mean(*found);
  } else {
    result.ground_truth = dataset.graph.AverageDegree();
  }

  // The shared stack every trial re-instantiates fresh (cold cache):
  // in-memory backend, bounded shared cache, inline execution, the
  // configured estimand. Per-trial knobs ride in through RunOptions.
  api::SamplerBuilder builder;
  builder.OverGraph(&dataset.graph, &dataset.attributes)
      .WithCache({.capacity = config.cache_capacity,
                  .num_shards = config.cache_shards})
      .RunInline()
      .WithWalker(config.walker)
      .StopAfterSteps(config.steps_per_walker);
  if (config.estimand.attribute.empty()) {
    builder.EstimateAverageDegree();
  } else {
    builder.EstimateAttributeMean(config.estimand.attribute);
  }

  for (size_t s = 0; s < config.ensemble_sizes.size(); ++s) {
    const uint32_t size = config.ensemble_sizes[s];
    double err_sum = 0.0, charged_sum = 0.0, standalone_sum = 0.0;
    double hit_rate_sum = 0.0, eviction_sum = 0.0;
    uint64_t err_count = 0;

    for (uint32_t trial = 0; trial < config.trials; ++trial) {
      auto sampler = builder.Build();
      HW_CHECK_MSG(sampler.ok(), "ensemble curve sampler build failed");
      api::RunOptions run_options = (*sampler)->default_run_options();
      run_options.num_walkers = size;
      run_options.seed =
          util::SubSeed(config.seed, (s + 1) * 1'000'003ull + trial);
      auto handle = (*sampler)->Run(run_options);
      HW_CHECK_MSG(handle.ok(), "ensemble run failed");
      auto run = handle->Wait();
      HW_CHECK_MSG(run.ok(), "ensemble run failed");

      if (run->has_estimate) {
        err_sum += metrics::RelativeError(run->estimate, result.ground_truth);
        ++err_count;
      }
      charged_sum += static_cast<double>(run->charged_queries);
      standalone_sum +=
          static_cast<double>(run->ensemble.summed_stats.unique_queries);
      hit_rate_sum += run->ensemble.cache_stats.HitRate();
      eviction_sum += static_cast<double>(run->ensemble.cache_stats.evictions);
    }

    double trials = static_cast<double>(config.trials);
    result.mean_relative_error.push_back(
        err_count == 0 ? 0.0 : err_sum / static_cast<double>(err_count));
    result.mean_charged_queries.push_back(charged_sum / trials);
    result.mean_standalone_queries.push_back(standalone_sum / trials);
    result.mean_cache_hit_rate.push_back(hit_rate_sum / trials);
    result.mean_evictions.push_back(eviction_sum / trials);
  }
  return result;
}

}  // namespace histwalk::experiment
