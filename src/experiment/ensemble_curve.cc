#include "experiment/ensemble_curve.h"

#include "access/graph_access.h"
#include "estimate/ensemble_runner.h"
#include "estimate/estimators.h"
#include "metrics/divergence.h"
#include "util/random.h"

namespace histwalk::experiment {

EnsembleCurveResult RunEnsembleCurve(const Dataset& dataset,
                                     const EnsembleCurveConfig& config) {
  HW_CHECK(!config.ensemble_sizes.empty());
  HW_CHECK(config.steps_per_walker > 0);
  HW_CHECK(config.trials > 0);

  EnsembleCurveResult result;
  result.dataset_name = dataset.name;
  result.walker_name = config.walker.DisplayName();
  result.estimand_name = config.estimand.DisplayName();
  result.ensemble_sizes = config.ensemble_sizes;

  attr::AttrId attr = attr::kInvalidAttr;
  if (!config.estimand.attribute.empty()) {
    auto found = dataset.attributes.Find(config.estimand.attribute);
    HW_CHECK_MSG(found.ok(), "estimand attribute missing from dataset");
    attr = *found;
    result.ground_truth = dataset.attributes.Mean(attr);
  } else {
    result.ground_truth = dataset.graph.AverageDegree();
  }

  // The stationary bias is a pure function of the walker spec; resolve it
  // once with a throwaway walker instead of per trial.
  core::StationaryBias bias = core::StationaryBias::kDegreeProportional;
  {
    access::GraphAccess probe_access(&dataset.graph, &dataset.attributes);
    auto probe = core::MakeWalker(config.walker, &probe_access, /*seed=*/0);
    HW_CHECK_MSG(probe.ok(), "invalid walker spec for ensemble curve");
    bias = (*probe)->bias();
  }

  for (size_t s = 0; s < config.ensemble_sizes.size(); ++s) {
    const uint32_t size = config.ensemble_sizes[s];
    double err_sum = 0.0, charged_sum = 0.0, standalone_sum = 0.0;
    double hit_rate_sum = 0.0, eviction_sum = 0.0;
    uint64_t err_count = 0;

    for (uint32_t trial = 0; trial < config.trials; ++trial) {
      access::GraphAccess backend(&dataset.graph, &dataset.attributes);
      access::SharedAccessGroup group(
          &backend, {.cache = {.capacity = config.cache_capacity,
                               .num_shards = config.cache_shards}});
      estimate::EnsembleOptions options{
          .num_walkers = size,
          .seed = util::SubSeed(config.seed, (s + 1) * 1'000'003ull + trial),
          .max_steps = config.steps_per_walker,
      };
      auto run = estimate::RunEnsemble(group, config.walker, options);
      HW_CHECK_MSG(run.ok(), "ensemble run failed");

      estimate::MergedSamples merged = run->Merged();
      if (!merged.nodes.empty()) {
        std::vector<double> f(merged.nodes.size());
        for (size_t t = 0; t < merged.nodes.size(); ++t) {
          f[t] = attr == attr::kInvalidAttr
                     ? static_cast<double>(merged.degrees[t])
                     : dataset.attributes.Value(merged.nodes[t], attr);
        }
        double estimate = estimate::EstimateMean(f, merged.degrees, bias);
        err_sum += metrics::RelativeError(estimate, result.ground_truth);
        ++err_count;
      }
      charged_sum += static_cast<double>(run->charged_queries);
      standalone_sum += static_cast<double>(run->summed_stats.unique_queries);
      hit_rate_sum += run->cache_stats.HitRate();
      eviction_sum += static_cast<double>(run->cache_stats.evictions);
    }

    double trials = static_cast<double>(config.trials);
    result.mean_relative_error.push_back(
        err_count == 0 ? 0.0 : err_sum / static_cast<double>(err_count));
    result.mean_charged_queries.push_back(charged_sum / trials);
    result.mean_standalone_queries.push_back(standalone_sum / trials);
    result.mean_cache_hit_rate.push_back(hit_rate_sum / trials);
    result.mean_evictions.push_back(eviction_sum / trials);
  }
  return result;
}

}  // namespace histwalk::experiment
