#include "experiment/report.h"

#include <cstdlib>

namespace histwalk::experiment {

namespace {

util::TextTable CurveTable(const std::vector<uint64_t>& budgets,
                           const std::vector<std::string>& walker_names,
                           const std::vector<std::vector<double>>& series,
                           const std::string& x_name) {
  std::vector<std::string> columns{x_name};
  for (const auto& name : walker_names) columns.push_back(name);
  util::TextTable table(std::move(columns));
  for (size_t b = 0; b < budgets.size(); ++b) {
    std::vector<std::string> row{util::TextTable::Cell(budgets[b])};
    for (size_t w = 0; w < series.size(); ++w) {
      row.push_back(util::TextTable::Cell(series[w][b]));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace

util::TextTable ErrorCurveTable(const ErrorCurveResult& result) {
  return CurveTable(result.budgets, result.walker_names,
                    result.mean_relative_error, "query_cost");
}

std::string BiasMeasureName(BiasMeasure measure) {
  switch (measure) {
    case BiasMeasure::kKlDivergence:
      return "kl_divergence";
    case BiasMeasure::kL2Distance:
      return "l2_distance";
    case BiasMeasure::kRelativeError:
      return "relative_error";
  }
  return "unknown";
}

util::TextTable BiasCurveTable(const BiasCurveResult& result,
                               BiasMeasure measure) {
  const std::vector<std::vector<double>>* series = nullptr;
  switch (measure) {
    case BiasMeasure::kKlDivergence:
      series = &result.kl_divergence;
      break;
    case BiasMeasure::kL2Distance:
      series = &result.l2_distance;
      break;
    case BiasMeasure::kRelativeError:
      series = &result.relative_error;
      break;
  }
  return CurveTable(result.budgets, result.walker_names, *series,
                    "query_cost");
}

util::TextTable DistributionTable(const DistributionResult& result) {
  std::vector<std::string> columns{"degree_bin", "theoretical"};
  for (const auto& name : result.walker_names) columns.push_back(name);
  util::TextTable table(std::move(columns));
  for (size_t b = 0; b < result.theoretical_binned.size(); ++b) {
    std::vector<std::string> row{
        util::TextTable::Cell(static_cast<uint64_t>(b)),
        util::TextTable::Cell(result.theoretical_binned[b])};
    for (const auto& series : result.empirical_binned) {
      row.push_back(util::TextTable::Cell(series[b]));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

util::TextTable DistributionAgreementTable(const DistributionResult& result) {
  util::TextTable table({"walker", "total_variation", "symmetric_kl"});
  for (size_t w = 0; w < result.walker_names.size(); ++w) {
    table.AddRow({result.walker_names[w],
                  util::TextTable::Cell(result.total_variation[w]),
                  util::TextTable::Cell(result.symmetric_kl[w])});
  }
  return table;
}

void EmitTable(const util::TextTable& table, const std::string& title,
               const std::string& csv_name, std::ostream& os) {
  os << "\n== " << title << " ==\n";
  table.Print(os);
  const char* dir = std::getenv("HISTWALK_CSV_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    std::string path = std::string(dir) + "/" + csv_name + ".csv";
    util::Status status = table.WriteCsv(path);
    if (!status.ok()) {
      os << "(csv dump failed: " << status.ToString() << ")\n";
    }
  }
}

}  // namespace histwalk::experiment
