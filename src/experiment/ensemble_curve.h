#ifndef HISTWALK_EXPERIMENT_ENSEMBLE_CURVE_H_
#define HISTWALK_EXPERIMENT_ENSEMBLE_CURVE_H_

#include <string>
#include <vector>

#include "core/walker_factory.h"
#include "experiment/datasets.h"
#include "experiment/error_curve.h"

// The shared-history ensemble experiment: how does estimation error fall —
// and how much does the service actually bill — as more concurrent walkers
// draw from one bounded HistoryCache?
//
// For each ensemble size the harness runs `trials` independent ensembles
// (fresh group each), estimates the estimand from the merged samples, and
// records alongside the error the two cost views the access layer keeps:
// the summed standalone cost (what N isolated walkers would have paid, the
// seed's accounting) and the group's charged cost (backend fetches under
// shared history). Their ratio is the ensemble saving; shrinking the cache
// capacity shows the saving eroding as evictions force re-fetches.

namespace histwalk::experiment {

struct EnsembleCurveConfig {
  core::WalkerSpec walker;
  std::vector<uint32_t> ensemble_sizes = {1, 2, 4, 8};
  uint64_t steps_per_walker = 1000;
  // HistoryCache capacity (0 = unbounded) and sharding for every group.
  uint64_t cache_capacity = 0;
  uint32_t cache_shards = 8;
  uint32_t trials = 20;
  uint64_t seed = 1;
  EstimandSpec estimand;
};

struct EnsembleCurveResult {
  std::string dataset_name;
  std::string walker_name;
  std::string estimand_name;
  double ground_truth = 0.0;
  std::vector<uint32_t> ensemble_sizes;
  // Per ensemble size, means over trials:
  std::vector<double> mean_relative_error;
  std::vector<double> mean_charged_queries;   // service-billed fetches
  std::vector<double> mean_standalone_queries;  // summed per-walker uniques
  std::vector<double> mean_cache_hit_rate;
  std::vector<double> mean_evictions;
};

EnsembleCurveResult RunEnsembleCurve(const Dataset& dataset,
                                     const EnsembleCurveConfig& config);

}  // namespace histwalk::experiment

#endif  // HISTWALK_EXPERIMENT_ENSEMBLE_CURVE_H_
