#include "experiment/warm_start.h"

#include <filesystem>

#include "access/graph_access.h"
#include "estimate/ensemble_runner.h"
#include "estimate/estimators.h"
#include "metrics/divergence.h"
#include "net/remote_backend.h"
#include "store/snapshot.h"
#include "util/random.h"

namespace histwalk::experiment {
namespace {

struct MeasuredRun {
  double relative_error = 0.0;
  bool has_error = false;
  uint64_t wire_requests = 0;
  uint64_t charged_queries = 0;
  uint64_t sim_wall_us = 0;
};

}  // namespace

WarmStartResult RunWarmStart(const Dataset& dataset,
                             const WarmStartConfig& config) {
  HW_CHECK(!config.step_budgets.empty());
  HW_CHECK(config.trials > 0);
  HW_CHECK(config.warmup_steps > 0);

  WarmStartResult result;
  result.dataset_name = dataset.name;
  result.walker_name = config.walker.DisplayName();
  result.estimand_name = config.estimand.DisplayName();

  attr::AttrId attr = attr::kInvalidAttr;
  if (!config.estimand.attribute.empty()) {
    auto found = dataset.attributes.Find(config.estimand.attribute);
    HW_CHECK_MSG(found.ok(), "estimand attribute missing from dataset");
    attr = *found;
    result.ground_truth = dataset.attributes.Mean(attr);
  } else {
    result.ground_truth = dataset.graph.AverageDegree();
  }

  core::StationaryBias bias = core::StationaryBias::kDegreeProportional;
  {
    access::GraphAccess probe_access(&dataset.graph, &dataset.attributes);
    auto probe = core::MakeWalker(config.walker, &probe_access, /*seed=*/0);
    HW_CHECK_MSG(probe.ok(), "invalid walker spec for warm-start experiment");
    bias = (*probe)->bias();
  }

  std::string snapshot_path = config.snapshot_path;
  if (snapshot_path.empty()) {
    snapshot_path = (std::filesystem::temp_directory_path() /
                     ("histwalk_warm_start_" + std::to_string(config.seed) +
                      ".hwss"))
                        .string();
  }

  // Runs one phase-2 measurement crawl over a group whose cache is already
  // in whatever state the caller arranged (empty = cold, loaded = warm).
  auto measure = [&](access::SharedAccessGroup& group,
                     net::RemoteBackend& remote, uint64_t steps,
                     uint64_t run_seed) {
    MeasuredRun measured;
    auto run = estimate::RunEnsembleAsync(
        group, config.walker,
        {.num_walkers = config.ensemble_size,
         .seed = run_seed,
         .max_steps = steps},
        {.depth = config.pipeline_depth, .max_batch = config.max_batch});
    HW_CHECK_MSG(run.ok(), "warm-start ensemble run failed");
    estimate::MergedSamples merged = run->Merged();
    if (!merged.nodes.empty()) {
      std::vector<double> f(merged.nodes.size());
      for (size_t t = 0; t < merged.nodes.size(); ++t) {
        f[t] = attr == attr::kInvalidAttr
                   ? static_cast<double>(merged.degrees[t])
                   : dataset.attributes.Value(merged.nodes[t], attr);
      }
      double estimate = estimate::EstimateMean(f, merged.degrees, bias);
      measured.relative_error =
          metrics::RelativeError(estimate, result.ground_truth);
      measured.has_error = true;
    }
    measured.wire_requests = run->pipeline_stats.wire_requests;
    measured.charged_queries = run->charged_queries;
    measured.sim_wall_us = remote.sim_now_us();
    return measured;
  };

  result.points.resize(config.step_budgets.size());
  for (size_t p = 0; p < config.step_budgets.size(); ++p) {
    result.points[p].steps_per_walker = config.step_budgets[p];
  }

  for (uint32_t trial = 0; trial < config.trials; ++trial) {
    // ---- phase 1: warm-up crawl, persisted through the store ------------
    net::LatencyModelOptions latency = config.latency;
    latency.seed = util::SubSeed(config.seed, 0x3a7d + trial);
    latency.max_in_flight = config.pipeline_depth;
    {
      access::GraphAccess inner(&dataset.graph, &dataset.attributes);
      net::RemoteBackend remote(&inner, latency);
      access::SharedAccessGroup group(
          &remote, {.cache = {.num_shards = config.cache_shards}});
      auto warmup = estimate::RunEnsembleAsync(
          group, config.walker,
          {.num_walkers = config.ensemble_size,
           .seed = util::SubSeed(config.seed, 0x77a1 + trial),
           .max_steps = config.warmup_steps},
          {.depth = config.pipeline_depth, .max_batch = config.max_batch});
      HW_CHECK_MSG(warmup.ok(), "warm-up crawl failed");
      auto written = store::WriteSnapshot(group.cache(), snapshot_path);
      HW_CHECK_MSG(written.ok(), "warm-start snapshot write failed");
      result.snapshot_entries = written->entries;
      result.snapshot_file_bytes = written->file_bytes;
    }

    // ---- phase 2: the second task, cold vs warm -------------------------
    const uint64_t task_seed = util::SubSeed(config.seed, 0x52c9 + trial);
    for (size_t p = 0; p < config.step_budgets.size(); ++p) {
      const uint64_t steps = config.step_budgets[p];
      WarmStartPoint& point = result.points[p];

      access::GraphAccess cold_inner(&dataset.graph, &dataset.attributes);
      net::RemoteBackend cold_remote(&cold_inner, latency);
      access::SharedAccessGroup cold_group(
          &cold_remote, {.cache = {.num_shards = config.cache_shards}});
      MeasuredRun cold = measure(cold_group, cold_remote, steps, task_seed);

      access::GraphAccess warm_inner(&dataset.graph, &dataset.attributes);
      net::RemoteBackend warm_remote(&warm_inner, latency);
      access::SharedAccessGroup warm_group(
          &warm_remote, {.cache = {.num_shards = config.cache_shards}});
      auto loaded = store::LoadSnapshot(snapshot_path, warm_group.cache());
      HW_CHECK_MSG(loaded.ok(), "warm-start snapshot load failed");
      MeasuredRun warm = measure(warm_group, warm_remote, steps, task_seed);

      if (cold.has_error) point.cold_relative_error += cold.relative_error;
      if (warm.has_error) point.warm_relative_error += warm.relative_error;
      point.cold_wire_requests += static_cast<double>(cold.wire_requests);
      point.warm_wire_requests += static_cast<double>(warm.wire_requests);
      point.cold_charged_queries +=
          static_cast<double>(cold.charged_queries);
      point.warm_charged_queries +=
          static_cast<double>(warm.charged_queries);
      point.cold_sim_wall_seconds =
          point.cold_sim_wall_seconds + cold.sim_wall_us / 1e6;
      point.warm_sim_wall_seconds =
          point.warm_sim_wall_seconds + warm.sim_wall_us / 1e6;
    }
  }

  const double trials = static_cast<double>(config.trials);
  for (WarmStartPoint& point : result.points) {
    point.cold_relative_error /= trials;
    point.warm_relative_error /= trials;
    point.cold_wire_requests /= trials;
    point.warm_wire_requests /= trials;
    point.cold_charged_queries /= trials;
    point.warm_charged_queries /= trials;
    point.cold_sim_wall_seconds /= trials;
    point.warm_sim_wall_seconds /= trials;
    point.wire_savings =
        point.cold_wire_requests > 0.0
            ? 1.0 - point.warm_wire_requests / point.cold_wire_requests
            : 0.0;
  }
  return result;
}

util::TextTable WarmStartTable(const WarmStartResult& result) {
  util::TextTable table({"steps", "err_cold", "err_warm", "wire_cold",
                         "wire_warm", "saved", "charged_cold", "charged_warm",
                         "wall_cold_s", "wall_warm_s"});
  for (const WarmStartPoint& point : result.points) {
    table.AddRow({util::TextTable::Cell(uint64_t{point.steps_per_walker}),
                  util::TextTable::Cell(point.cold_relative_error),
                  util::TextTable::Cell(point.warm_relative_error),
                  util::TextTable::Cell(point.cold_wire_requests, 6),
                  util::TextTable::Cell(point.warm_wire_requests, 6),
                  util::TextTable::Cell(point.wire_savings),
                  util::TextTable::Cell(point.cold_charged_queries, 6),
                  util::TextTable::Cell(point.warm_charged_queries, 6),
                  util::TextTable::Cell(point.cold_sim_wall_seconds),
                  util::TextTable::Cell(point.warm_sim_wall_seconds)});
  }
  return table;
}

}  // namespace histwalk::experiment
