#include "experiment/warm_start.h"

#include <filesystem>

#include "api/sampler.h"
#include "metrics/divergence.h"
#include "util/random.h"

namespace histwalk::experiment {
namespace {

struct MeasuredRun {
  double relative_error = 0.0;
  bool has_error = false;
  uint64_t wire_requests = 0;
  uint64_t charged_queries = 0;
  uint64_t sim_wall_us = 0;
};

}  // namespace

WarmStartResult RunWarmStart(const Dataset& dataset,
                             const WarmStartConfig& config) {
  HW_CHECK(!config.step_budgets.empty());
  HW_CHECK(config.trials > 0);
  HW_CHECK(config.warmup_steps > 0);

  WarmStartResult result;
  result.dataset_name = dataset.name;
  result.walker_name = config.walker.DisplayName();
  result.estimand_name = config.estimand.DisplayName();

  if (!config.estimand.attribute.empty()) {
    auto found = dataset.attributes.Find(config.estimand.attribute);
    HW_CHECK_MSG(found.ok(), "estimand attribute missing from dataset");
    result.ground_truth = dataset.attributes.Mean(*found);
  } else {
    result.ground_truth = dataset.graph.AverageDegree();
  }

  std::string snapshot_path = config.snapshot_path;
  if (snapshot_path.empty()) {
    snapshot_path = (std::filesystem::temp_directory_path() /
                     ("histwalk_warm_start_" + std::to_string(config.seed) +
                      ".hwss"))
                        .string();
  }

  // The pipelined crawl stack both phases share; only the store options
  // (absent / save-only / warm-start) and seeds differ per use.
  auto base_builder = [&](const net::LatencyModelOptions& latency) {
    api::SamplerBuilder builder;
    builder.OverGraph(&dataset.graph, &dataset.attributes)
        .WithRemoteWire(latency)
        .WithCache({.num_shards = config.cache_shards})
        .RunPipelined(
            {.depth = config.pipeline_depth, .max_batch = config.max_batch})
        .WithWalker(config.walker)
        .WithEnsemble(config.ensemble_size, /*seed=*/1)
        .StopAfterSteps(config.warmup_steps);
    if (config.estimand.attribute.empty()) {
      builder.EstimateAverageDegree();
    } else {
      builder.EstimateAttributeMean(config.estimand.attribute);
    }
    if (config.registry != nullptr) {
      builder.WithObservability({.registry = config.registry});
    }
    return builder;
  };

  // Runs one phase-2 measurement crawl over a freshly built sampler whose
  // cache is in whatever state the builder arranged (cold or warm-started
  // from the snapshot).
  auto measure = [&](api::SamplerBuilder builder, uint64_t steps,
                     uint64_t run_seed) {
    auto sampler = builder.Build();
    HW_CHECK_MSG(sampler.ok(), "warm-start sampler build failed");
    HW_CHECK_MSG((*sampler)->warm_start_status().ok(),
                 "warm-start snapshot load failed");
    api::RunOptions run_options = (*sampler)->default_run_options();
    run_options.seed = run_seed;
    run_options.max_steps = steps;
    auto handle = (*sampler)->Run(run_options);
    HW_CHECK_MSG(handle.ok(), "warm-start ensemble run failed");
    auto run = handle->Wait();
    HW_CHECK_MSG(run.ok(), "warm-start ensemble run failed");
    MeasuredRun measured;
    if (run->has_estimate) {
      measured.relative_error =
          metrics::RelativeError(run->estimate, result.ground_truth);
      measured.has_error = true;
    }
    measured.wire_requests = run->ensemble.pipeline_stats.wire_requests;
    measured.charged_queries = run->charged_queries;
    measured.sim_wall_us = run->sim_wall_us;
    return measured;
  };

  result.points.resize(config.step_budgets.size());
  for (size_t p = 0; p < config.step_budgets.size(); ++p) {
    result.points[p].steps_per_walker = config.step_budgets[p];
  }

  for (uint32_t trial = 0; trial < config.trials; ++trial) {
    // ---- phase 1: warm-up crawl, persisted through the store ------------
    net::LatencyModelOptions latency = config.latency;
    latency.seed = util::SubSeed(config.seed, 0x3a7d + trial);
    latency.max_in_flight = config.pipeline_depth;
    {
      auto warmup = base_builder(latency).WithHistoryStore(
          store::HistoryStoreOptions{
              .snapshot_path = snapshot_path,
              // Save-only: the warm-up crawl is always cold, even when an
              // earlier trial already wrote the snapshot it overwrites.
              .load_snapshot = false,
              .checkpoint_wal_bytes = 0});
      auto sampler = warmup.Build();
      HW_CHECK_MSG(sampler.ok(), "warm-up sampler build failed");
      auto handle = (*sampler)->Run({.walker = config.walker,
                                     .num_walkers = config.ensemble_size,
                                     .seed = util::SubSeed(config.seed,
                                                           0x77a1 + trial),
                                     .max_steps = config.warmup_steps});
      HW_CHECK_MSG(handle.ok() && handle->Wait().ok(), "warm-up crawl failed");
      HW_CHECK_MSG((*sampler)->SaveHistory().ok(),
                   "warm-start snapshot write failed");
      result.snapshot_entries =
          (*sampler)->group()->cache().stats().entries;
      std::error_code ec;
      const auto file_bytes = std::filesystem::file_size(snapshot_path, ec);
      result.snapshot_file_bytes = ec ? 0 : file_bytes;
    }

    // ---- phase 2: the second task, cold vs warm -------------------------
    const uint64_t task_seed = util::SubSeed(config.seed, 0x52c9 + trial);
    for (size_t p = 0; p < config.step_budgets.size(); ++p) {
      const uint64_t steps = config.step_budgets[p];
      WarmStartPoint& point = result.points[p];

      MeasuredRun cold = measure(base_builder(latency), steps, task_seed);
      MeasuredRun warm = measure(
          base_builder(latency).WithHistoryStore(store::HistoryStoreOptions{
              .snapshot_path = snapshot_path, .checkpoint_wal_bytes = 0}),
          steps, task_seed);

      if (cold.has_error) point.cold_relative_error += cold.relative_error;
      if (warm.has_error) point.warm_relative_error += warm.relative_error;
      point.cold_wire_requests += static_cast<double>(cold.wire_requests);
      point.warm_wire_requests += static_cast<double>(warm.wire_requests);
      point.cold_charged_queries +=
          static_cast<double>(cold.charged_queries);
      point.warm_charged_queries +=
          static_cast<double>(warm.charged_queries);
      point.cold_sim_wall_seconds =
          point.cold_sim_wall_seconds + cold.sim_wall_us / 1e6;
      point.warm_sim_wall_seconds =
          point.warm_sim_wall_seconds + warm.sim_wall_us / 1e6;
    }
  }

  const double trials = static_cast<double>(config.trials);
  for (WarmStartPoint& point : result.points) {
    point.cold_relative_error /= trials;
    point.warm_relative_error /= trials;
    point.cold_wire_requests /= trials;
    point.warm_wire_requests /= trials;
    point.cold_charged_queries /= trials;
    point.warm_charged_queries /= trials;
    point.cold_sim_wall_seconds /= trials;
    point.warm_sim_wall_seconds /= trials;
    point.wire_savings =
        point.cold_wire_requests > 0.0
            ? 1.0 - point.warm_wire_requests / point.cold_wire_requests
            : 0.0;
  }
  return result;
}

util::TextTable WarmStartTable(const WarmStartResult& result) {
  util::TextTable table({"steps", "err_cold", "err_warm", "wire_cold",
                         "wire_warm", "saved", "charged_cold", "charged_warm",
                         "wall_cold_s", "wall_warm_s"});
  for (const WarmStartPoint& point : result.points) {
    table.AddRow({util::TextTable::Cell(uint64_t{point.steps_per_walker}),
                  util::TextTable::Cell(point.cold_relative_error),
                  util::TextTable::Cell(point.warm_relative_error),
                  util::TextTable::Cell(point.cold_wire_requests, 6),
                  util::TextTable::Cell(point.warm_wire_requests, 6),
                  util::TextTable::Cell(point.wire_savings),
                  util::TextTable::Cell(point.cold_charged_queries, 6),
                  util::TextTable::Cell(point.warm_charged_queries, 6),
                  util::TextTable::Cell(point.cold_sim_wall_seconds),
                  util::TextTable::Cell(point.warm_sim_wall_seconds)});
  }
  return table;
}

}  // namespace histwalk::experiment
