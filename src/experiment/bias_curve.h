#ifndef HISTWALK_EXPERIMENT_BIAS_CURVE_H_
#define HISTWALK_EXPERIMENT_BIAS_CURVE_H_

#include <string>
#include <vector>

#include "core/walker_factory.h"
#include "experiment/datasets.h"

// The small-graph bias experiment (Figures 7(a-c), 10, 11).
//
// For each sampler and query budget Q, `instances` independent walks of Q
// steps are run (cost accounting: these figures plot query costs that
// exceed what unique-query counting can absorb on 90-node graphs, so one
// query is charged per transition). Each walk yields
//
//  * its own empirical visit distribution, compared against the
//    deg(v)/2|E| target by symmetrized KL divergence and l2-distance, and
//  * an aggregate estimate from its reweighted samples, compared against
//    ground truth by relative error.
//
// The series reported per (sampler, budget) are the averages over walks.
// Per-walk (rather than pooled) measurement is what exposes the paper's
// claim: a sampler that gets stuck in a tight cluster produces a lopsided
// sample no matter how many independent walks are pooled later, and the
// history-aware walks escape such traps faster (sections 1.3 and 6.2).
// KL smoothing is a fixed epsilon so values are comparable across budgets.

namespace histwalk::experiment {

struct BiasCurveConfig {
  std::vector<core::WalkerSpec> walkers;
  std::vector<uint64_t> budgets;  // ascending step-budget checkpoints
  uint32_t instances = 500;       // independent walks averaged per point
  uint64_t seed = 1;
  // Start node for every walk; uniform random per instance when invalid
  // (the barbell experiments pin the start inside G1, Theorem 3's setup).
  graph::NodeId fixed_start = graph::kInvalidNode;
  // Relative-error estimand: population mean of measure_values. Empty =
  // average degree. measure_truth must be the exact population mean when
  // measure_values is set.
  std::vector<double> measure_values;
  double measure_truth = 0.0;
  // Additive smoothing for the per-walk KL (fixed so budgets compare).
  double kl_smoothing = 1e-4;
};

struct BiasCurveResult {
  std::string dataset_name;
  std::vector<uint64_t> budgets;
  std::vector<std::string> walker_names;
  // Indexed [walker][budget]; averages over walks.
  std::vector<std::vector<double>> kl_divergence;   // D(P||Q) + D(Q||P)
  std::vector<std::vector<double>> l2_distance;     // ||P - Q||_2
  std::vector<std::vector<double>> relative_error;  // aggregate estimate
};

BiasCurveResult RunBiasCurve(const Dataset& dataset,
                             const BiasCurveConfig& config);

}  // namespace histwalk::experiment

#endif  // HISTWALK_EXPERIMENT_BIAS_CURVE_H_
