#include "experiment/service_soak.h"

#include <algorithm>
#include <cstring>

#include "api/sampler.h"
#include "estimate/estimators.h"
#include "metrics/divergence.h"
#include "util/md5.h"
#include "util/random.h"

namespace histwalk::experiment {
namespace {

// Digest of a merged trace: what "bit-identical across modes and
// scheduler depths" is asserted on.
std::string TraceDigest(const estimate::MergedSamples& merged) {
  std::string bytes;
  bytes.reserve(merged.nodes.size() * sizeof(graph::NodeId) +
                merged.degrees.size() * sizeof(uint32_t));
  if (!merged.nodes.empty()) {
    bytes.append(reinterpret_cast<const char*>(merged.nodes.data()),
                 merged.nodes.size() * sizeof(graph::NodeId));
  }
  if (!merged.degrees.empty()) {
    bytes.append(reinterpret_cast<const char*>(merged.degrees.data()),
                 merged.degrees.size() * sizeof(uint32_t));
  }
  return util::Md5Hex(bytes);
}

double Percentile(std::vector<uint64_t> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::min<double>(static_cast<double>(values.size()) - 1.0,
                       q * static_cast<double>(values.size())));
  return static_cast<double>(values[rank]);
}

bool DigestsMatch(const SoakModeResult& a, const SoakModeResult& b) {
  if (a.tenants.size() != b.tenants.size()) return false;
  for (size_t i = 0; i < a.tenants.size(); ++i) {
    if (a.tenants[i].trace_digest != b.tenants[i].trace_digest) return false;
  }
  return true;
}

}  // namespace

ServiceSoakResult RunServiceSoak(const Dataset& dataset,
                                 const ServiceSoakConfig& config) {
  HW_CHECK(config.num_tenants > 0);
  HW_CHECK(config.steps_per_walker > 0);
  HW_CHECK(!config.check_depths.empty());

  ServiceSoakResult result;
  result.dataset_name = dataset.name;
  result.walker_name = config.walker.DisplayName();
  result.estimand_name = config.estimand.DisplayName();
  result.num_tenants = config.num_tenants;

  if (!config.estimand.attribute.empty()) {
    auto found = dataset.attributes.Find(config.estimand.attribute);
    HW_CHECK_MSG(found.ok(), "estimand attribute missing from dataset");
    result.ground_truth = dataset.attributes.Mean(*found);
  } else {
    result.ground_truth = dataset.graph.AverageDegree();
  }

  // One full service run through the api/ facade: a service-mode Sampler,
  // `config.num_tenants` runs submitted concurrently, all waited,
  // per-tenant outcomes + service-wide wire accounting collected.
  auto run_mode = [&](const std::string& label, bool share_history,
                      net::PipelineSchedulerPolicy policy, uint32_t depth) {
    SoakModeResult mode;
    mode.label = label;

    // Same wire-model seed in every mode so the comparison differs only in
    // sharing/scheduling, never in latency draws.
    net::LatencyModelOptions latency = config.latency;
    latency.seed = util::SubSeed(config.seed, 0x50a1);
    latency.max_in_flight = depth;

    api::SamplerBuilder builder;
    builder.OverGraph(&dataset.graph, &dataset.attributes)
        .WithRemoteWire(latency)
        .WithCache({.num_shards = config.cache_shards})
        .RunAsService({.max_sessions = config.num_tenants,
                       .share_history = share_history,
                       .pipeline = {.depth = depth,
                                    .max_batch = config.max_batch,
                                    .scheduler = policy,
                                    .cross_tenant_dedup = share_history}})
        .WithWalker(config.walker)
        .StopAfterSteps(config.steps_per_walker);
    if (config.estimand.attribute.empty()) {
      builder.EstimateAverageDegree();
    } else {
      builder.EstimateAttributeMean(config.estimand.attribute);
    }
    if (config.registry != nullptr) {
      builder.WithObservability({.registry = config.registry});
    }
    auto sampler = builder.Build();
    HW_CHECK_MSG(sampler.ok(), "service soak sampler build failed");

    std::vector<api::RunHandle> handles;
    handles.reserve(config.num_tenants);
    for (uint32_t t = 0; t < config.num_tenants; ++t) {
      const bool greedy = t == 0 && config.greedy_walkers > 0;
      api::RunOptions run_options = (*sampler)->default_run_options();
      run_options.num_walkers =
          greedy ? config.greedy_walkers : config.walkers_per_tenant;
      run_options.seed = util::SubSeed(config.seed, 0x7e40 + t);
      auto submitted = (*sampler)->Run(run_options);
      HW_CHECK_MSG(submitted.ok(), "service soak admission failed");
      handles.push_back(*submitted);
    }

    std::vector<uint64_t> latencies;
    latencies.reserve(config.num_tenants);
    for (uint32_t t = 0; t < config.num_tenants; ++t) {
      auto report = handles[t].Wait();  // detaches the session as well
      HW_CHECK_MSG(report.ok(), "service soak session failed");
      SoakTenantOutcome outcome;
      outcome.tenant = t;
      outcome.greedy = t == 0 && config.greedy_walkers > 0;
      estimate::MergedSamples merged = report->ensemble.Merged();
      outcome.num_samples = merged.nodes.size();
      if (report->has_estimate) {
        outcome.relative_error =
            metrics::RelativeError(report->estimate, result.ground_truth);
      }
      outcome.trace_digest = TraceDigest(merged);
      outcome.unique_queries = report->ensemble.summed_stats.unique_queries;
      outcome.charged_queries = report->charged_queries;
      outcome.wire_requests = report->tenant.wire_requests;
      outcome.wait_p50 = report->tenant.wait.Quantile(0.50);
      outcome.wait_p99 = report->tenant.wait.Quantile(0.99);
      outcome.wait_max = report->tenant.wait.max;
      outcome.sim_latency_us = report->latency_us;
      latencies.push_back(outcome.sim_latency_us);
      mode.charged_queries += outcome.charged_queries;
      if (!share_history) {
        // Isolated mode: total resident history is the sum of the private
        // per-tenant caches.
        mode.cache_entries += report->ensemble.cache_stats.entries;
      }
      if (!outcome.greedy) {
        mode.victim_wait_p99 = std::max(mode.victim_wait_p99,
                                        outcome.wait_p99);
        mode.victim_wait_max = std::max(mode.victim_wait_max,
                                        outcome.wait_max);
      }
      mode.tenants.push_back(std::move(outcome));
    }

    mode.wire_requests = (*sampler)->remote()->stats().requests;
    mode.sim_wall_us = (*sampler)->sim_now_us();
    if (share_history) {
      mode.cache_entries =
          (*sampler)->service()->shared_cache().stats().entries;
    }
    mode.latency_p50_us = Percentile(latencies, 0.50);
    mode.latency_p99_us = Percentile(latencies, 0.99);
    return mode;
  };

  const uint32_t main_depth = config.check_depths.front();
  result.shared_fair = run_mode("shared/fair", /*share_history=*/true,
                                net::PipelineSchedulerPolicy::kFairWeighted,
                                main_depth);
  result.isolated = run_mode("isolated", /*share_history=*/false,
                             net::PipelineSchedulerPolicy::kFairWeighted,
                             main_depth);
  result.shared_fifo = run_mode("shared/fifo", /*share_history=*/true,
                                net::PipelineSchedulerPolicy::kFifo,
                                main_depth);
  result.traces_match_across_depths = true;
  for (size_t d = 1; d < config.check_depths.size(); ++d) {
    SoakModeResult check = run_mode(
        "shared/fair depth=" + std::to_string(config.check_depths[d]),
        /*share_history=*/true, net::PipelineSchedulerPolicy::kFairWeighted,
        config.check_depths[d]);
    result.traces_match_across_depths &=
        DigestsMatch(result.shared_fair, check);
    result.depth_checks.push_back(std::move(check));
  }

  result.traces_match_isolated =
      DigestsMatch(result.shared_fair, result.isolated);
  result.wire_savings =
      result.isolated.wire_requests == 0
          ? 0.0
          : 1.0 - static_cast<double>(result.shared_fair.wire_requests) /
                      static_cast<double>(result.isolated.wire_requests);
  return result;
}

util::TextTable ServiceSoakModeTable(const ServiceSoakResult& result) {
  util::TextTable table({"mode", "wire", "charged", "cache_entries",
                         "sim_wall_s", "lat_p50_s", "lat_p99_s",
                         "victim_wait_p99", "victim_wait_max"});
  auto add = [&table](const SoakModeResult& mode) {
    table.AddRow({mode.label, util::TextTable::Cell(mode.wire_requests),
                  util::TextTable::Cell(mode.charged_queries),
                  util::TextTable::Cell(mode.cache_entries),
                  util::TextTable::Cell(mode.sim_wall_us / 1e6),
                  util::TextTable::Cell(mode.latency_p50_us / 1e6),
                  util::TextTable::Cell(mode.latency_p99_us / 1e6),
                  util::TextTable::Cell(mode.victim_wait_p99),
                  util::TextTable::Cell(mode.victim_wait_max)});
  };
  add(result.shared_fair);
  add(result.isolated);
  add(result.shared_fifo);
  for (const SoakModeResult& check : result.depth_checks) add(check);
  return table;
}

util::TextTable ServiceSoakFairnessTable(const ServiceSoakResult& result) {
  util::TextTable table({"scheduler", "tenant", "submitted", "wait_p50",
                         "wait_p99", "wait_max"});
  auto add = [&table](const std::string& scheduler,
                      const SoakModeResult& mode) {
    // The greedy tenant plus the worst-p99 victim: the contrast that
    // matters.
    const SoakTenantOutcome* greedy = nullptr;
    const SoakTenantOutcome* worst_victim = nullptr;
    for (const SoakTenantOutcome& tenant : mode.tenants) {
      if (tenant.greedy) {
        greedy = &tenant;
      } else if (worst_victim == nullptr ||
                 tenant.wait_p99 > worst_victim->wait_p99) {
        worst_victim = &tenant;
      }
    }
    for (const SoakTenantOutcome* tenant : {greedy, worst_victim}) {
      if (tenant == nullptr) continue;
      table.AddRow({scheduler,
                    tenant->greedy
                        ? "greedy#" + std::to_string(tenant->tenant)
                        : "victim#" + std::to_string(tenant->tenant),
                    util::TextTable::Cell(tenant->unique_queries),
                    util::TextTable::Cell(tenant->wait_p50),
                    util::TextTable::Cell(tenant->wait_p99),
                    util::TextTable::Cell(tenant->wait_max)});
    }
  };
  add("fair", result.shared_fair);
  add("fifo", result.shared_fifo);
  return table;
}

}  // namespace histwalk::experiment
