#ifndef HISTWALK_EXPERIMENT_LATENCY_CURVE_H_
#define HISTWALK_EXPERIMENT_LATENCY_CURVE_H_

#include <string>
#include <vector>

#include "core/walker_factory.h"
#include "experiment/datasets.h"
#include "experiment/error_curve.h"
#include "net/latency_model.h"
#include "net/request_pipeline.h"
#include "util/table.h"

// The wall-clock experiment: estimation error against SIMULATED CRAWL TIME
// rather than charged queries — the axis a real crawler lives on.
//
// For each (pipeline depth, ensemble size) the harness wraps the dataset in
// a net::RemoteBackend (seeded latency model, `depth` wire slots), runs a
// RunEnsembleAsync ensemble through a RequestPipeline of the same depth,
// and records the estimate's relative error, the simulated wall-clock the
// crawl took, the service-billed query count, and the pipeline's wire
// traffic. Because the merged traces are bit-identical across depths (the
// runner's contract), error is constant along a depth sweep while
// wall-clock falls — the curve isolates exactly what overlapping and
// batching buy, with the statistical quality held fixed.

namespace histwalk::experiment {

struct LatencyCurveConfig {
  core::WalkerSpec walker;
  std::vector<uint32_t> pipeline_depths = {1, 2, 4, 8};
  std::vector<uint32_t> ensemble_sizes = {8};
  uint64_t steps_per_walker = 500;
  uint32_t max_batch = 8;
  uint64_t cache_capacity = 0;
  uint32_t cache_shards = 8;
  uint32_t trials = 5;
  uint64_t seed = 1;
  // Per-trial latency seeds derive from `seed`; the other fields (base
  // latency, jitter, per-item cost, rate limit) are taken as-is.
  // max_in_flight is overridden by the swept pipeline depth.
  net::LatencyModelOptions latency;
  EstimandSpec estimand;
};

// One (depth, ensemble size) cell, averaged over trials.
struct LatencyCurvePoint {
  uint32_t pipeline_depth = 0;
  uint32_t ensemble_size = 0;
  double mean_relative_error = 0.0;
  double mean_sim_wall_seconds = 0.0;
  double mean_charged_queries = 0.0;
  double mean_wire_requests = 0.0;
  double mean_batch_size = 0.0;
  double mean_dedup_joins = 0.0;
  // mean_sim_wall_seconds of the FIRST swept depth's cell with the same
  // ensemble size, divided by this cell's — the overlap+batching speedup.
  // Put depth 1 first in pipeline_depths (the default) to read this as a
  // true vs-serial speedup.
  double speedup_vs_baseline = 1.0;
};

struct LatencyCurveResult {
  std::string dataset_name;
  std::string walker_name;
  std::string estimand_name;
  double ground_truth = 0.0;
  // Row-major over (ensemble_sizes x pipeline_depths), depth fastest.
  std::vector<LatencyCurvePoint> points;
};

LatencyCurveResult RunLatencyCurve(const Dataset& dataset,
                                   const LatencyCurveConfig& config);

// depth/size rows with error, sim wall-clock, speedup and wire columns.
util::TextTable LatencyCurveTable(const LatencyCurveResult& result);

}  // namespace histwalk::experiment

#endif  // HISTWALK_EXPERIMENT_LATENCY_CURVE_H_
