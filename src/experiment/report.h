#ifndef HISTWALK_EXPERIMENT_REPORT_H_
#define HISTWALK_EXPERIMENT_REPORT_H_

#include <ostream>
#include <string>

#include "experiment/bias_curve.h"
#include "experiment/distribution_experiment.h"
#include "experiment/error_curve.h"
#include "util/table.h"

// Turns experiment results into the row/series tables the benches print.
// Every table can additionally be dumped as CSV next to the binary by
// setting HISTWALK_CSV_DIR in the environment.

namespace histwalk::experiment {

// budget x walker matrix of mean relative error.
util::TextTable ErrorCurveTable(const ErrorCurveResult& result);

// Three tables (KL, L2, relative error); `measure` selects one.
enum class BiasMeasure { kKlDivergence, kL2Distance, kRelativeError };
std::string BiasMeasureName(BiasMeasure measure);
util::TextTable BiasCurveTable(const BiasCurveResult& result,
                               BiasMeasure measure);

// Degree-ordered binned distribution series plus an agreement summary.
util::TextTable DistributionTable(const DistributionResult& result);
util::TextTable DistributionAgreementTable(const DistributionResult& result);

// Prints `table` under a "== title ==" heading, and writes
// $HISTWALK_CSV_DIR/<csv_name>.csv when that directory is configured.
void EmitTable(const util::TextTable& table, const std::string& title,
               const std::string& csv_name, std::ostream& os);

}  // namespace histwalk::experiment

#endif  // HISTWALK_EXPERIMENT_REPORT_H_
