#ifndef HISTWALK_EXPERIMENT_SERVICE_SOAK_H_
#define HISTWALK_EXPERIMENT_SERVICE_SOAK_H_

#include <string>
#include <vector>

#include "core/walker_factory.h"
#include "experiment/datasets.h"
#include "experiment/error_curve.h"
#include "net/latency_model.h"
#include "net/request_pipeline.h"
#include "obs/registry.h"
#include "util/table.h"

// The multi-tenant service experiment: a closed-loop workload driver that
// runs DOZENS of concurrent sampling sessions (tenants) through one
// service::SamplingService over the simulated-latency backend, and answers
// the three questions the service layer exists for:
//
//  1. What does cross-tenant shared history buy? The same tenants run in
//     shared mode (one cache, cross-tenant singleflight) and isolated mode
//     (per-tenant private caches behind the same pipeline and wire). By
//     the runner's determinism contract every tenant's traces — and
//     therefore its estimation error — are bit-identical in both modes;
//     only the bill changes. The headline numbers are total wire requests
//     and simulated session latency (p50/p99 over tenants) at equal
//     per-tenant error.
//  2. Are sessions deterministic under the scheduler? The shared run is
//     repeated across pipeline depths (scheduler thread counts); every
//     tenant's merged-trace digest must match bit-for-bit.
//  3. Does fair scheduling protect light tenants? Tenant 0 is a GREEDY
//     co-tenant (many concurrent walkers keeping the pipeline queue
//     loaded); the weighted-fair scheduler's per-tenant p99 queue wait for
//     the other ("victim") tenants is compared against the kFifo drain
//     order, and must stay bounded.

namespace histwalk::experiment {

struct ServiceSoakConfig {
  core::WalkerSpec walker;
  // Tenants, INCLUDING the greedy one (tenant 0) when greedy_walkers > 0.
  uint32_t num_tenants = 32;
  uint32_t walkers_per_tenant = 2;
  uint64_t steps_per_walker = 120;
  // Concurrent walkers of the greedy tenant 0 (0 = no greedy tenant).
  uint32_t greedy_walkers = 16;
  uint64_t seed = 1;
  uint32_t max_batch = 8;
  uint32_t cache_shards = 16;
  // Shared-mode runs repeated at these scheduler depths; tenant traces
  // must be identical across all of them. The first entry is the depth the
  // headline (shared vs isolated vs fifo) comparison runs at.
  std::vector<uint32_t> check_depths = {4, 1};
  // Wire model (max_in_flight is set to the run's pipeline depth).
  net::LatencyModelOptions latency;
  EstimandSpec estimand;
  // Optional metrics registry every soak mode's service stack reports
  // into (hw_service_* sessions, hw_net_pipeline_* scheduler counters,
  // per-view miss attribution). Null = none wired.
  obs::Registry* registry = nullptr;
};

struct SoakTenantOutcome {
  uint32_t tenant = 0;  // submission index; 0 = the greedy tenant
  bool greedy = false;
  double relative_error = 0.0;
  uint64_t num_samples = 0;
  uint64_t unique_queries = 0;   // summed per-walker standalone cost
  uint64_t charged_queries = 0;  // what this tenant was billed
  uint64_t wire_requests = 0;    // batches issued on this tenant's behalf
  uint64_t wait_p50 = 0;         // pipeline queue waits, in drained items
  uint64_t wait_p99 = 0;
  uint64_t wait_max = 0;
  uint64_t sim_latency_us = 0;  // session submit -> done on the sim clock
  std::string trace_digest;     // md5 of the merged (nodes, degrees) trace
};

// One full service run (a mode of the comparison).
struct SoakModeResult {
  std::string label;
  std::vector<SoakTenantOutcome> tenants;
  uint64_t wire_requests = 0;    // service-wide, from the RemoteBackend
  uint64_t charged_queries = 0;  // summed tenant bills
  uint64_t cache_entries = 0;    // resident history after the run
  uint64_t sim_wall_us = 0;      // simulated crawl wall-clock
  double latency_p50_us = 0.0;   // over tenant session latencies
  double latency_p99_us = 0.0;
  // Max p99 / max queue wait over NON-greedy tenants — the starvation
  // metric.
  uint64_t victim_wait_p99 = 0;
  uint64_t victim_wait_max = 0;
};

struct ServiceSoakResult {
  std::string dataset_name;
  std::string walker_name;
  std::string estimand_name;
  double ground_truth = 0.0;
  uint32_t num_tenants = 0;

  SoakModeResult shared_fair;  // headline: shared history, fair scheduler
  SoakModeResult isolated;     // control: private caches, same wire
  SoakModeResult shared_fifo;  // starvation baseline: arrival-order drain
  // Shared-mode reruns at the remaining check_depths (digest comparison).
  std::vector<SoakModeResult> depth_checks;

  // Every tenant's digest identical between shared_fair and isolated
  // (implies identical per-tenant error — sharing changed only the bill).
  bool traces_match_isolated = false;
  // Every tenant's digest identical across all check_depths.
  bool traces_match_across_depths = false;
  // 1 - shared/isolated wire requests: what cross-tenant history saved.
  double wire_savings = 0.0;
};

ServiceSoakResult RunServiceSoak(const Dataset& dataset,
                                 const ServiceSoakConfig& config);

// One row per mode: wire, charged, cache, sim wall, latency percentiles,
// victim waits.
util::TextTable ServiceSoakModeTable(const ServiceSoakResult& result);

// Greedy vs victim queue waits, fair vs fifo — the fairness story.
util::TextTable ServiceSoakFairnessTable(const ServiceSoakResult& result);

}  // namespace histwalk::experiment

#endif  // HISTWALK_EXPERIMENT_SERVICE_SOAK_H_
