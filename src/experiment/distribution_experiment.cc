#include "experiment/distribution_experiment.h"

#include <mutex>

#include "access/graph_access.h"
#include "estimate/walk_runner.h"
#include "metrics/distribution.h"
#include "metrics/divergence.h"
#include "util/parallel.h"

namespace histwalk::experiment {

DistributionResult RunDistributionExperiment(
    const Dataset& dataset, const DistributionConfig& config) {
  HW_CHECK(!config.walkers.empty());
  HW_CHECK(config.instances > 0 && config.steps > 0);

  DistributionResult result;
  result.dataset_name = dataset.name;

  const uint64_t n = dataset.graph.num_nodes();
  const std::vector<double> target =
      metrics::StationaryDistribution(dataset.graph);
  const std::vector<graph::NodeId> order =
      metrics::NodesByDegree(dataset.graph);
  result.theoretical_binned =
      metrics::BinnedByOrder(target, order, config.num_bins);

  for (size_t w = 0; w < config.walkers.size(); ++w) {
    const core::WalkerSpec& spec = config.walkers[w];
    result.walker_names.push_back(spec.DisplayName());

    metrics::VisitCounter counter(n);
    std::mutex mu;
    util::ParallelFor(config.instances, [&](size_t instance) {
      util::Random start_rng(util::SubSeed(config.seed, instance));
      graph::NodeId start =
          static_cast<graph::NodeId>(start_rng.UniformIndex(n));

      access::GraphAccess access(&dataset.graph, &dataset.attributes, {});
      uint64_t walker_seed =
          util::SubSeed(config.seed, (w + 1) * 1'000'003ull + instance);
      auto walker = core::MakeWalker(spec, &access, walker_seed);
      HW_CHECK(walker.ok());
      HW_CHECK((*walker)->Reset(start).ok());
      estimate::TracedWalk trace =
          estimate::TraceWalk(**walker, {.max_steps = config.steps});

      std::lock_guard<std::mutex> lock(mu);
      counter.AddAll(trace.nodes);
    });

    std::vector<double> empirical = counter.Probabilities();
    result.empirical_binned.push_back(
        metrics::BinnedByOrder(empirical, order, config.num_bins));
    result.total_variation.push_back(
        metrics::TotalVariation(empirical, target));
    double smoothing =
        counter.total() > 0 ? 0.1 / counter.total() : 1e-9;
    result.symmetric_kl.push_back(
        metrics::SymmetrizedKlDivergence(empirical, target, smoothing));
  }
  return result;
}

}  // namespace histwalk::experiment
