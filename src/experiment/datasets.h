#ifndef HISTWALK_EXPERIMENT_DATASETS_H_
#define HISTWALK_EXPERIMENT_DATASETS_H_

#include <string>
#include <vector>

#include "attr/attribute.h"
#include "graph/graph.h"

// The paper's six evaluation datasets (Table 1), as reproducible synthetic
// surrogates.
//
// The real crawls (Facebook ego net 1684, the authors' Google Plus crawl,
// the Yelp dataset challenge dump, SNAP YouTube) are not available offline,
// so each is replaced by a generator calibrated to the Table 1 statistics
// that drive random-walk behaviour: node count (scaled for the two largest
// graphs — noted per dataset), average degree, clustering regime and a
// heavy-tailed degree distribution, reduced to the largest connected
// component. The synthetic graphs (clustered cliques, barbell) are exact.
//
// Attributes: every surrogate carries a homophilous "age"-like attribute;
// the Yelp surrogate additionally carries the heavy-tailed homophilous
// "reviews_count" that Figure 9 aggregates.

namespace histwalk::experiment {

enum class DatasetId {
  kFacebook,   // 775-node ego-net-like graph      (Table 1 row 1)
  kFacebook2,  // second ego net, Figure 8(b)/(d)
  kGPlus,      // Google Plus surrogate, scaled     (Table 1 row 2)
  kYelp,       // Yelp surrogate                    (Table 1 row 3)
  kYoutube,    // YouTube surrogate, scaled         (Table 1 row 4)
  kClustered,  // cliques 10/30/50 in a chain       (Table 1 row 5)
  kBarbell,    // two K_50 halves + bridge          (Table 1 row 6)
};

// All ids above, in Table 1 order.
std::vector<DatasetId> AllDatasetIds();

std::string DatasetName(DatasetId id);

struct Dataset {
  std::string name;
  graph::Graph graph;
  attr::AttributeTable attributes;
  // Substitution/scaling note printed by benches ("surrogate, scaled from
  // 240k nodes", "exact synthetic topology", ...).
  std::string note;
};

inline constexpr uint64_t kDefaultDatasetSeed = 0x9e3779b97f4a7c15ULL;

// Builds the surrogate deterministically from `seed`. Attribute columns:
// "age" on every dataset; "reviews_count" on kYelp.
Dataset BuildDataset(DatasetId id, uint64_t seed = kDefaultDatasetSeed);

}  // namespace histwalk::experiment

#endif  // HISTWALK_EXPERIMENT_DATASETS_H_
