#ifndef HISTWALK_EXPERIMENT_CONVERGENCE_H_
#define HISTWALK_EXPERIMENT_CONVERGENCE_H_

#include <string>
#include <vector>

#include "core/walker_factory.h"
#include "experiment/datasets.h"
#include "experiment/error_curve.h"
#include "net/latency_model.h"
#include "obs/registry.h"
#include "util/table.h"

// The adaptive-stopping experiment: how many charged queries does it take
// to REACH a fixed confidence-interval half-width, and how much of that
// bill does history pay?
//
// Phase 1 (warm-up) crawls the dataset behind a latency-modelled remote
// service and persists the resulting HistoryCache through a real store
// snapshot on disk. Phase 2 asks a second, independent question (fresh
// seeds) with the ONLINE stop rule armed: each run streams batch-means
// convergence diagnostics and halts itself the moment the estimate's CI
// half-width crosses the target — twice per target, cold (empty cache)
// and warm (snapshot restored).
//
// Both arms walk the same chains (the runner's determinism contract), so
// they shrink the CI at the same per-step rate; what differs is what a
// step COSTS. The warm crawl re-fetches nothing the snapshot holds, so it
// reaches the same statistical precision for strictly fewer charged
// queries and less simulated wall-clock — the paper's "history is an
// asset" claim restated in the units an analyst actually budgets:
// queries-to-target-CI.

namespace histwalk::experiment {

struct ConvergenceConfig {
  core::WalkerSpec walker;
  // Phase-2 sweep: CI half-width targets for the adaptive stop rule
  // (absolute units of the estimand). Tighter targets need more steps.
  std::vector<double> ci_targets = {0.8, 0.4, 0.2};
  uint32_t ensemble_size = 8;
  // Phase-1 warm-up crawl length per walker.
  uint64_t warmup_steps = 600;
  // Safety cap per measured walker: a run that cannot reach its target
  // stops here instead of crawling forever.
  uint64_t max_steps = 20000;
  uint32_t trials = 3;
  uint64_t seed = 1;
  uint32_t pipeline_depth = 4;
  uint32_t max_batch = 8;
  uint32_t cache_shards = 8;
  // Streaming cadence: per-walker publication interval for the tracker.
  uint32_t progress_interval = 32;
  // Wire model (per-trial seeds derive from `seed`; max_in_flight is set
  // to pipeline_depth).
  net::LatencyModelOptions latency;
  EstimandSpec estimand;
  // Snapshot file the warmed history round-trips through; "" = a file in
  // the system temp directory derived from `seed`.
  std::string snapshot_path;
  // Optional metrics registry every crawl reports into. Null = none.
  obs::Registry* registry = nullptr;
};

// One CI-target row, averaged over trials. The charged/wall columns are
// the experiment's point; the achieved-CI columns confirm both arms
// actually hit the target (hit_fraction < 1 means max_steps cut some
// runs first).
struct ConvergencePoint {
  double ci_target = 0.0;
  double cold_steps = 0.0;  // total ensemble steps to the stop
  double warm_steps = 0.0;
  double cold_charged_queries = 0.0;
  double warm_charged_queries = 0.0;
  double cold_sim_wall_seconds = 0.0;
  double warm_sim_wall_seconds = 0.0;
  double cold_achieved_ci = 0.0;  // final CI half-width at the stop
  double warm_achieved_ci = 0.0;
  double cold_hit_fraction = 0.0;  // trials that latched the stop rule
  double warm_hit_fraction = 0.0;
  // 1 - warm/cold charged queries: fraction of the bill history paid.
  double charged_savings = 0.0;
};

struct ConvergenceResult {
  std::string dataset_name;
  std::string walker_name;
  std::string estimand_name;
  double ground_truth = 0.0;
  uint64_t snapshot_entries = 0;
  uint64_t snapshot_file_bytes = 0;
  std::vector<ConvergencePoint> points;  // one per CI target
};

ConvergenceResult RunConvergence(const Dataset& dataset,
                                 const ConvergenceConfig& config);

// target rows with paired cold/warm steps, charge, wall and achieved-CI
// columns.
util::TextTable ConvergenceTable(const ConvergenceResult& result);

}  // namespace histwalk::experiment

#endif  // HISTWALK_EXPERIMENT_CONVERGENCE_H_
