#ifndef HISTWALK_EXPERIMENT_ERROR_CURVE_H_
#define HISTWALK_EXPERIMENT_ERROR_CURVE_H_

#include <string>
#include <vector>

#include "core/walker_factory.h"
#include "experiment/datasets.h"

// The large-graph bias experiment (Figures 6, 7(d), 9): repeated walks per
// sampler, each stopped at a query budget; the reported series is the mean
// relative error of the aggregate estimate against ground truth at every
// budget checkpoint. One traced walk per instance serves all checkpoints
// (prefixes of a walk are exactly the walk run with a smaller budget).

namespace histwalk::experiment {

// What is being estimated: the population average of an attribute column,
// or the average degree when attribute is empty.
struct EstimandSpec {
  std::string attribute;  // "" = average degree

  std::string DisplayName() const {
    return attribute.empty() ? "avg_degree" : "avg_" + attribute;
  }
};

struct ErrorCurveConfig {
  std::vector<core::WalkerSpec> walkers;
  std::vector<uint64_t> budgets;  // ascending query-cost checkpoints
  uint32_t instances = 200;       // repeated walks per sampler
  uint64_t seed = 1;
  // Step-count guard: a run ends after max_steps_factor * max(budget)
  // steps even if the budget is not yet spent (protects against walkers
  // circling inside already-queried nodes on small graphs).
  uint64_t max_steps_factor = 50;
  EstimandSpec estimand;
};

struct ErrorCurveResult {
  std::string dataset_name;
  std::string estimand_name;
  double ground_truth = 0.0;
  std::vector<uint64_t> budgets;
  std::vector<std::string> walker_names;
  // mean_relative_error[w][b]: mean over instances of
  // |estimate - truth| / truth for walker w at budget b.
  std::vector<std::vector<double>> mean_relative_error;
  // Standard error of that mean (for judging separation between curves).
  std::vector<std::vector<double>> stderr_relative_error;
};

ErrorCurveResult RunErrorCurve(const Dataset& dataset,
                               const ErrorCurveConfig& config);

}  // namespace histwalk::experiment

#endif  // HISTWALK_EXPERIMENT_ERROR_CURVE_H_
