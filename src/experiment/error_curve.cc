#include "experiment/error_curve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "access/graph_access.h"
#include "estimate/estimators.h"
#include "estimate/walk_runner.h"
#include "metrics/divergence.h"
#include "util/parallel.h"

namespace histwalk::experiment {

ErrorCurveResult RunErrorCurve(const Dataset& dataset,
                               const ErrorCurveConfig& config) {
  HW_CHECK(!config.walkers.empty());
  HW_CHECK(!config.budgets.empty());
  HW_CHECK(std::is_sorted(config.budgets.begin(), config.budgets.end()));
  HW_CHECK(config.instances > 0);

  ErrorCurveResult result;
  result.dataset_name = dataset.name;
  result.estimand_name = config.estimand.DisplayName();
  result.budgets = config.budgets;

  // Ground truth and per-node measure values.
  attr::AttrId attr = attr::kInvalidAttr;
  if (!config.estimand.attribute.empty()) {
    auto found = dataset.attributes.Find(config.estimand.attribute);
    HW_CHECK_MSG(found.ok(), "estimand attribute missing from dataset");
    attr = *found;
    result.ground_truth = dataset.attributes.Mean(attr);
  } else {
    result.ground_truth = dataset.graph.AverageDegree();
  }

  const uint64_t max_budget = config.budgets.back();
  const uint64_t max_steps = config.max_steps_factor * max_budget;
  const size_t num_budgets = config.budgets.size();

  for (size_t w = 0; w < config.walkers.size(); ++w) {
    const core::WalkerSpec& spec = config.walkers[w];
    result.walker_names.push_back(spec.DisplayName());

    std::vector<double> err_sum(num_budgets, 0.0);
    std::vector<double> err_sum_sq(num_budgets, 0.0);
    std::vector<uint64_t> err_count(num_budgets, 0);
    std::mutex mu;

    util::ParallelFor(config.instances, [&](size_t instance) {
      // The start node depends only on the instance index, so every sampler
      // faces the same sequence of start nodes (variance reduction for the
      // cross-sampler comparison).
      util::Random start_rng(util::SubSeed(config.seed, instance));
      graph::NodeId start = static_cast<graph::NodeId>(
          start_rng.UniformIndex(dataset.graph.num_nodes()));

      access::GraphAccess access(&dataset.graph, &dataset.attributes,
                                 {.query_budget = max_budget});
      uint64_t walker_seed =
          util::SubSeed(config.seed, (w + 1) * 1'000'003ull + instance);
      auto walker = core::MakeWalker(spec, &access, walker_seed);
      HW_CHECK(walker.ok());
      HW_CHECK((*walker)->Reset(start).ok());

      estimate::TracedWalk trace = estimate::TraceWalk(
          **walker, {.max_steps = max_steps, .query_budget = max_budget});

      // Per-step measure values for the estimand.
      std::vector<double> f(trace.num_steps());
      for (size_t t = 0; t < trace.nodes.size(); ++t) {
        f[t] = attr == attr::kInvalidAttr
                   ? static_cast<double>(trace.degrees[t])
                   : dataset.attributes.Value(trace.nodes[t], attr);
      }

      std::vector<double> rel_err(num_budgets,
                                  std::numeric_limits<double>::quiet_NaN());
      for (size_t b = 0; b < num_budgets; ++b) {
        uint64_t steps = trace.StepsWithinBudget(config.budgets[b]);
        if (steps == 0) continue;
        double estimate = estimate::EstimateMean(
            std::span<const double>(f).first(steps),
            std::span<const uint32_t>(trace.degrees).first(steps),
            (*walker)->bias());
        rel_err[b] = metrics::RelativeError(estimate, result.ground_truth);
      }

      std::lock_guard<std::mutex> lock(mu);
      for (size_t b = 0; b < num_budgets; ++b) {
        if (std::isnan(rel_err[b])) continue;
        err_sum[b] += rel_err[b];
        err_sum_sq[b] += rel_err[b] * rel_err[b];
        ++err_count[b];
      }
    });

    std::vector<double> means(num_budgets, 0.0), stderrs(num_budgets, 0.0);
    for (size_t b = 0; b < num_budgets; ++b) {
      if (err_count[b] == 0) continue;
      double n = static_cast<double>(err_count[b]);
      means[b] = err_sum[b] / n;
      double var = err_sum_sq[b] / n - means[b] * means[b];
      stderrs[b] = err_count[b] > 1 ? std::sqrt(std::max(0.0, var) / n) : 0.0;
    }
    result.mean_relative_error.push_back(std::move(means));
    result.stderr_relative_error.push_back(std::move(stderrs));
  }
  return result;
}

}  // namespace histwalk::experiment
