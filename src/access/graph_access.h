#ifndef HISTWALK_ACCESS_GRAPH_ACCESS_H_
#define HISTWALK_ACCESS_GRAPH_ACCESS_H_

#include <cstdint>
#include <vector>

#include "access/backend.h"
#include "access/node_access.h"

// NodeAccess implementation backed by an in-memory Graph — the simulated
// web/API interface the paper runs its algorithms against ("we simulated a
// restricted-access web interface precisely according to the definition in
// Section 2.1", section 6.1).
//
// GraphAccess is also the in-memory AccessBackend: the Fetch* methods are
// the raw, uncharged wire protocol that SharedAccess + HistoryCache build
// shared-history ensembles on, while the NodeAccess methods keep the seed's
// single-walker behaviour (private unbounded history, per-access budget).

namespace histwalk::access {

struct GraphAccessOptions {
  // Maximum number of charged (unique) queries; 0 means unlimited.
  uint64_t query_budget = 0;
};

class GraphAccess final : public NodeAccess, public AccessBackend {
 public:
  // `graph` and `attributes` must outlive this object. `attributes` may be
  // null when the workload does not use attributes.
  GraphAccess(const graph::Graph* graph,
              const attr::AttributeTable* attributes,
              GraphAccessOptions options = {});

  // NodeAccess (charged, cached, budgeted).
  util::Result<std::span<const graph::NodeId>> Neighbors(
      graph::NodeId v) override;
  util::Result<double> Attribute(graph::NodeId v,
                                 attr::AttrId attr) const override;
  util::Result<uint32_t> SummaryDegree(graph::NodeId v) const override;

  uint64_t num_nodes() const override { return graph_->num_nodes(); }
  const QueryStats& stats() const override { return stats_; }
  uint64_t remaining_budget() const override;
  void ResetAccounting() override;
  uint64_t HistoryBytes() const override;

  // Tightens or lifts the budget mid-crawl (experiments re-budget a shared
  // access between phases). Accounting is kept; remaining_budget() clamps
  // at 0 when more was already spent than the new budget allows.
  void set_query_budget(uint64_t budget) { options_.query_budget = budget; }

  // AccessBackend (raw, uncharged, no history).
  util::Result<std::span<const graph::NodeId>> FetchNeighbors(
      graph::NodeId v) const override;
  util::Result<double> FetchAttribute(graph::NodeId v,
                                      attr::AttrId attr) const override;
  util::Result<uint32_t> FetchSummaryDegree(graph::NodeId v) const override;
  std::string name() const override { return "graph"; }

 private:
  const graph::Graph* graph_;
  const attr::AttributeTable* attributes_;
  GraphAccessOptions options_;
  QueryStats stats_;
  std::vector<bool> queried_;  // cache membership per node
};

}  // namespace histwalk::access

#endif  // HISTWALK_ACCESS_GRAPH_ACCESS_H_
