#include "access/node_access.h"

// NodeAccess is an interface; its virtual destructor is anchored here so the
// vtable has a home translation unit.

namespace histwalk::access {}  // namespace histwalk::access
