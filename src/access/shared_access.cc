#include "access/shared_access.h"

#include <string>

#include "access/async_fetcher.h"
#include "access/history_journal.h"
#include "access/history_tier.h"
#include "util/check.h"

namespace histwalk::access {

namespace {

// Resolved once per group so the miss path costs one cached pointer
// dereference plus a relaxed striped add, never a registry name lookup.
GroupObsCounters ResolveObsCounters(obs::Registry* registry) {
  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::Global();
  GroupObsCounters obs;
  obs.cache_hits = reg.counter("hw_access_cache_hits_total");
  obs.cache_misses = reg.counter("hw_access_cache_misses_total");
  obs.store_hits = reg.counter("hw_access_store_hits_total");
  obs.singleflight_joins = reg.counter("hw_net_singleflight_joins_total");
  obs.wire_fetches = reg.counter("hw_net_wire_fetches_total");
  obs.budget_refusals = reg.counter("hw_access_budget_refusals_total");
  obs.fetch_errors = reg.counter("hw_access_fetch_errors_total");
  obs.pipeline_wait = reg.histogram("hw_net_pipeline_wait_items");
  return obs;
}

std::string ProbeArgs(const HistoryCache& cache, graph::NodeId v,
                      const char* result) {
  return "\"node\":" + std::to_string(v) + ",\"shard\":" +
         std::to_string(HistoryCache::ShardOf(v, cache.num_shards())) +
         ",\"result\":\"" + result + "\"";
}

}  // namespace

SharedAccessGroup::SharedAccessGroup(const AccessBackend* backend,
                                     SharedAccessOptions options)
    : backend_(backend),
      options_(options),
      owned_cache_(std::make_unique<HistoryCache>(options.cache)),
      cache_(owned_cache_.get()),
      obs_(ResolveObsCounters(options.registry)) {
  HW_CHECK(backend_ != nullptr);
}

SharedAccessGroup::SharedAccessGroup(const AccessBackend* backend,
                                     HistoryCache& shared_cache,
                                     SharedAccessOptions options)
    : backend_(backend),
      options_(options),
      cache_(&shared_cache),
      obs_(ResolveObsCounters(options.registry)) {
  HW_CHECK(backend_ != nullptr);
}

std::unique_ptr<SharedAccess> SharedAccessGroup::MakeView() {
  return std::make_unique<SharedAccess>(this);
}

uint64_t SharedAccessGroup::remaining_budget() const {
  if (options_.query_budget == 0) return UINT64_MAX;
  uint64_t charged = charged_queries();
  return charged >= options_.query_budget ? 0
                                          : options_.query_budget - charged;
}

void SharedAccessGroup::ResetAll() {
  cache_->Clear();
  charged_.store(0, std::memory_order_relaxed);
}

HistoryCache::Entry SharedAccessGroup::StoreFetched(
    graph::NodeId v, std::span<const graph::NodeId> neighbors) {
  bool inserted = false;
  HistoryCache::Entry entry = cache_->Put(v, neighbors, &inserted);
  // Journal only genuinely new entries: a Put that lost a concurrent
  // double-fetch race was already logged by the winner.
  if (inserted && journal_ != nullptr) {
    journal_->OnCacheInsert(v, std::span<const graph::NodeId>(*entry),
                            *cache_);
  }
  return entry;
}

std::vector<HistoryCache::Entry> SharedAccessGroup::StoreFetchedBatch(
    std::span<const HistoryCache::ImportEntry> entries) {
  std::vector<HistoryCache::Entry> stored(entries.size());
  std::unique_ptr<bool[]> inserted(new bool[entries.size()]{});
  cache_->PutBatch(entries, stored.data(), inserted.get());
  if (journal_ != nullptr) {
    // Journal only genuinely new entries, after the batch landed (the
    // cache is authoritative, the journal trails it).
    for (size_t i = 0; i < entries.size(); ++i) {
      if (inserted[i]) {
        journal_->OnCacheInsert(entries[i].node,
                                std::span<const graph::NodeId>(*stored[i]),
                                *cache_);
      }
    }
  }
  return stored;
}

HistoryCache::Entry SharedAccessGroup::StoreWarm(
    graph::NodeId v, std::span<const graph::NodeId> neighbors) {
  // Deliberately bypasses the journal (the record came FROM durable
  // history) and the budget/wire accounting (history is free).
  return cache_->Put(v, neighbors, nullptr);
}

bool SharedAccessGroup::TryCharge() {
  if (options_.query_budget == 0) {
    charged_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  uint64_t current = charged_.load(std::memory_order_relaxed);
  while (current < options_.query_budget) {
    if (charged_.compare_exchange_weak(current, current + 1,
                                       std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

SharedAccess::SharedAccess(SharedAccessGroup* group)
    : group_(group),
      view_id_(group->next_view_id_.fetch_add(1, std::memory_order_relaxed)),
      queried_(group->backend()->num_nodes(), false) {
  HW_CHECK(group_ != nullptr);
}

void SharedAccess::RecordMissOutcome(graph::NodeId v,
                                     obs::FlightEventKind kind,
                                     uint64_t start_us) {
  obs::FlightRecorder* flight = group_->flight_;
  if (flight == nullptr) return;
  obs::FlightEvent event;
  event.node = v;
  event.actor = view_id_;
  event.kind = kind;
  event.start_us = start_us;
  event.end_us = flight->NowUs();
  flight->Record(event);
}

void SharedAccess::AccountServed(graph::NodeId v) {
  ++stats_.total_queries;
  if (queried_[v]) {
    ++stats_.cache_hits;
  } else {
    queried_[v] = true;
    ++stats_.unique_queries;
  }
}

util::Result<std::span<const graph::NodeId>> SharedAccess::Neighbors(
    graph::NodeId v) {
  if (v >= num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  const GroupObsCounters& obs = group_->obs_;
  HistoryCache::Entry entry = group_->cache_->Get(v);
  if (entry != nullptr) {
    obs.cache_hits->Inc();
    HW_TRACE_INSTANT_ARGS(tracer_, trace_track_, "cache_probe",
                          ProbeArgs(*group_->cache_, v, "hit"));
  } else {
    // Every branch below attributes this miss to exactly one outcome
    // counter/flight kind — the invariant obs_identity_test pins.
    obs.cache_misses->Inc();
    const uint64_t miss_start_us =
        group_->flight_ != nullptr ? group_->flight_->NowUs() : 0;
    if (group_->tier_ != nullptr) {
      // Second-tier probe: durable history answers the miss without wire,
      // budget or journal traffic.
      if (HistoryCache::Entry warm = group_->tier_->Lookup(v)) {
        entry = group_->StoreWarm(v, std::span<const graph::NodeId>(*warm));
        obs.store_hits->Inc();
        HW_TRACE_INSTANT_ARGS(tracer_, trace_track_, "cache_probe",
                              ProbeArgs(*group_->cache_, v, "store"));
        RecordMissOutcome(v, obs::FlightEventKind::kStoreHit, miss_start_us);
      }
    }
    if (entry == nullptr && group_->fetcher_ != nullptr) {
      // Async miss path: the attached fetcher batches / deduplicates this
      // fetch with the other walkers' outstanding misses; budget charging
      // happens inside the fetcher, once per wire fetch.
      auto fetched = group_->fetcher_->FetchShared(v);
      if (!fetched.ok()) {
        const bool refused =
            fetched.status().code() == util::StatusCode::kBudgetExhausted;
        (refused ? obs.budget_refusals : obs.fetch_errors)->Inc();
        HW_TRACE_INSTANT_ARGS(
            tracer_, trace_track_, "cache_probe",
            ProbeArgs(*group_->cache_, v, refused ? "refused" : "error"));
        RecordMissOutcome(v,
                          refused ? obs::FlightEventKind::kBudgetRefusal
                                  : obs::FlightEventKind::kError,
                          miss_start_us);
        return fetched.status();
      }
      entry = std::move(fetched->entry);
      if (fetched->charged_this_call) {
        ++charged_fetches_;
        obs.wire_fetches->Inc();
        HW_TRACE_INSTANT_ARGS(tracer_, trace_track_, "cache_probe",
                              ProbeArgs(*group_->cache_, v, "wire"));
        RecordMissOutcome(v, obs::FlightEventKind::kWireFetch,
                          miss_start_us);
      } else {
        obs.singleflight_joins->Inc();
        HW_TRACE_INSTANT_ARGS(tracer_, trace_track_, "cache_probe",
                              ProbeArgs(*group_->cache_, v, "join"));
        RecordMissOutcome(v, obs::FlightEventKind::kSingleflightJoin,
                          miss_start_us);
      }
    } else if (entry == nullptr) {
      // Synchronous miss path: this view pays for a real fetch. A refused
      // call is not issued at all, so it leaves the charge accounting
      // untouched (same semantics as GraphAccess).
      if (!group_->TryCharge()) {
        obs.budget_refusals->Inc();
        HW_TRACE_INSTANT_ARGS(tracer_, trace_track_, "cache_probe",
                              ProbeArgs(*group_->cache_, v, "refused"));
        RecordMissOutcome(v, obs::FlightEventKind::kBudgetRefusal,
                          miss_start_us);
        return util::Status::BudgetExhausted("group query budget exhausted");
      }
      auto fetched = group_->backend_->FetchNeighbors(v);
      if (!fetched.ok()) {
        group_->RefundCharge();
        obs.fetch_errors->Inc();
        HW_TRACE_INSTANT_ARGS(tracer_, trace_track_, "cache_probe",
                              ProbeArgs(*group_->cache_, v, "error"));
        RecordMissOutcome(v, obs::FlightEventKind::kError, miss_start_us);
        return fetched.status();
      }
      entry = group_->StoreFetched(v, *fetched);
      ++charged_fetches_;
      obs.wire_fetches->Inc();
      HW_TRACE_INSTANT_ARGS(tracer_, trace_track_, "cache_probe",
                            ProbeArgs(*group_->cache_, v, "wire"));
      RecordMissOutcome(v, obs::FlightEventKind::kWireFetch, miss_start_us);
    }
  }
  AccountServed(v);
  retained_[retain_slot_] = entry;
  retain_slot_ = (retain_slot_ + 1) % std::size(retained_);
  return util::Result<std::span<const graph::NodeId>>(
      std::span<const graph::NodeId>(*entry));
}

util::Result<double> SharedAccess::Attribute(graph::NodeId v,
                                             attr::AttrId attr) const {
  if (v >= num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  return group_->backend_->FetchAttribute(v, attr);
}

util::Result<uint32_t> SharedAccess::SummaryDegree(graph::NodeId v) const {
  if (v >= num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  return group_->backend_->FetchSummaryDegree(v);
}

void SharedAccess::ResetAccounting() {
  stats_ = QueryStats{};
  queried_.assign(group_->backend()->num_nodes(), false);
  charged_fetches_ = 0;
  for (auto& handle : retained_) handle.reset();
}

}  // namespace histwalk::access
