#include "access/shared_access.h"

#include "access/async_fetcher.h"
#include "access/history_journal.h"
#include "util/check.h"

namespace histwalk::access {

SharedAccessGroup::SharedAccessGroup(const AccessBackend* backend,
                                     SharedAccessOptions options)
    : backend_(backend),
      options_(options),
      owned_cache_(std::make_unique<HistoryCache>(options.cache)),
      cache_(owned_cache_.get()) {
  HW_CHECK(backend_ != nullptr);
}

SharedAccessGroup::SharedAccessGroup(const AccessBackend* backend,
                                     HistoryCache& shared_cache,
                                     SharedAccessOptions options)
    : backend_(backend), options_(options), cache_(&shared_cache) {
  HW_CHECK(backend_ != nullptr);
}

std::unique_ptr<SharedAccess> SharedAccessGroup::MakeView() {
  return std::make_unique<SharedAccess>(this);
}

uint64_t SharedAccessGroup::remaining_budget() const {
  if (options_.query_budget == 0) return UINT64_MAX;
  uint64_t charged = charged_queries();
  return charged >= options_.query_budget ? 0
                                          : options_.query_budget - charged;
}

void SharedAccessGroup::ResetAll() {
  cache_->Clear();
  charged_.store(0, std::memory_order_relaxed);
}

HistoryCache::Entry SharedAccessGroup::StoreFetched(
    graph::NodeId v, std::span<const graph::NodeId> neighbors) {
  bool inserted = false;
  HistoryCache::Entry entry = cache_->Put(v, neighbors, &inserted);
  // Journal only genuinely new entries: a Put that lost a concurrent
  // double-fetch race was already logged by the winner.
  if (inserted && journal_ != nullptr) {
    journal_->OnCacheInsert(v, std::span<const graph::NodeId>(*entry),
                            *cache_);
  }
  return entry;
}

std::vector<HistoryCache::Entry> SharedAccessGroup::StoreFetchedBatch(
    std::span<const HistoryCache::ImportEntry> entries) {
  std::vector<HistoryCache::Entry> stored(entries.size());
  std::unique_ptr<bool[]> inserted(new bool[entries.size()]{});
  cache_->PutBatch(entries, stored.data(), inserted.get());
  if (journal_ != nullptr) {
    // Journal only genuinely new entries, after the batch landed (the
    // cache is authoritative, the journal trails it).
    for (size_t i = 0; i < entries.size(); ++i) {
      if (inserted[i]) {
        journal_->OnCacheInsert(entries[i].node,
                                std::span<const graph::NodeId>(*stored[i]),
                                *cache_);
      }
    }
  }
  return stored;
}

bool SharedAccessGroup::TryCharge() {
  if (options_.query_budget == 0) {
    charged_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  uint64_t current = charged_.load(std::memory_order_relaxed);
  while (current < options_.query_budget) {
    if (charged_.compare_exchange_weak(current, current + 1,
                                       std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

SharedAccess::SharedAccess(SharedAccessGroup* group)
    : group_(group), queried_(group->backend()->num_nodes(), false) {
  HW_CHECK(group_ != nullptr);
}

void SharedAccess::AccountServed(graph::NodeId v) {
  ++stats_.total_queries;
  if (queried_[v]) {
    ++stats_.cache_hits;
  } else {
    queried_[v] = true;
    ++stats_.unique_queries;
  }
}

util::Result<std::span<const graph::NodeId>> SharedAccess::Neighbors(
    graph::NodeId v) {
  if (v >= num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  HistoryCache::Entry entry = group_->cache_->Get(v);
  if (entry == nullptr && group_->fetcher_ != nullptr) {
    // Async miss path: the attached fetcher batches / deduplicates this
    // fetch with the other walkers' outstanding misses; budget charging
    // happens inside the fetcher, once per wire fetch.
    auto fetched = group_->fetcher_->FetchShared(v);
    if (!fetched.ok()) return fetched.status();
    entry = std::move(fetched->entry);
    if (fetched->charged_this_call) ++charged_fetches_;
  } else if (entry == nullptr) {
    // Synchronous miss path: this view pays for a real fetch. A refused
    // call is not issued at all, so it leaves the accounting untouched
    // (same semantics as GraphAccess).
    if (!group_->TryCharge()) {
      return util::Status::BudgetExhausted("group query budget exhausted");
    }
    auto fetched = group_->backend_->FetchNeighbors(v);
    if (!fetched.ok()) {
      group_->RefundCharge();
      return fetched.status();
    }
    entry = group_->StoreFetched(v, *fetched);
    ++charged_fetches_;
  }
  AccountServed(v);
  retained_[retain_slot_] = entry;
  retain_slot_ = (retain_slot_ + 1) % std::size(retained_);
  return util::Result<std::span<const graph::NodeId>>(
      std::span<const graph::NodeId>(*entry));
}

util::Result<double> SharedAccess::Attribute(graph::NodeId v,
                                             attr::AttrId attr) const {
  if (v >= num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  return group_->backend_->FetchAttribute(v, attr);
}

util::Result<uint32_t> SharedAccess::SummaryDegree(graph::NodeId v) const {
  if (v >= num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  return group_->backend_->FetchSummaryDegree(v);
}

void SharedAccess::ResetAccounting() {
  stats_ = QueryStats{};
  queried_.assign(group_->backend()->num_nodes(), false);
  charged_fetches_ = 0;
  for (auto& handle : retained_) handle.reset();
}

}  // namespace histwalk::access
