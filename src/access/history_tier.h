#ifndef HISTWALK_ACCESS_HISTORY_TIER_H_
#define HISTWALK_ACCESS_HISTORY_TIER_H_

#include "access/history_cache.h"
#include "graph/graph.h"

// A read-through second history tier: memory cache -> tier -> wire.
//
// Warm start (store::HistoryStore::LoadInto) front-loads the ENTIRE
// durable history into the bounded memory cache; with a history larger
// than the cache that both thrashes the cache and forgets the overflow.
// Attaching the store's contents as a TIER instead keeps the bounded
// cache demand-filled: a miss probes the tier before touching the wire,
// and a tier hit is promoted into the memory cache WITHOUT journaling
// (the record is already durable) and without charging the fetch budget —
// history is free, which is the paper's whole point. The obs registry
// counts these promotions as hw_access_store_hits_total, the middle term
// of the wire-attribution identity
//     misses == wire_fetches + singleflight_joins + store_hits
//             + budget_refusals + fetch_errors.

namespace histwalk::access {

class HistoryTier {
 public:
  virtual ~HistoryTier() = default;
  // Pinned handle for v's neighbor list, or null when this tier does not
  // hold it. Must be thread-safe: called from walker threads on the miss
  // path.
  virtual HistoryCache::Entry Lookup(graph::NodeId v) = 0;
};

// An unbounded in-memory tier backed by its own HistoryCache — load a
// snapshot into cache() (store::HistoryStore::LoadInto) and attach via
// SharedAccessGroup::set_history_tier. SamplerBuilder::WithStoreReadTier
// wires exactly this.
class CacheTier final : public HistoryTier {
 public:
  explicit CacheTier(HistoryCacheOptions options = {}) : cache_(options) {}

  HistoryCache& cache() { return cache_; }
  const HistoryCache& cache() const { return cache_; }

  HistoryCache::Entry Lookup(graph::NodeId v) override {
    return cache_.Get(v);
  }

 private:
  HistoryCache cache_;
};

}  // namespace histwalk::access

#endif  // HISTWALK_ACCESS_HISTORY_TIER_H_
