#ifndef HISTWALK_ACCESS_HISTORY_CACHE_H_
#define HISTWALK_ACCESS_HISTORY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

// Capacity-bounded store of neighbor-query responses — the sampler's
// "history" (section 2.1) promoted from an implementation detail of
// GraphAccess to a first-class subsystem.
//
// The cache is sharded: a node id maps to a shard by a fixed multiplicative
// hash, and each shard runs an independent LRU list under its own mutex, so
// concurrent walkers sharing one cache contend only per shard. Entries are
// handed out as shared_ptr handles; eviction drops the cache's reference
// while any walker still holding the handle keeps its span valid — the
// lock-free analogue of page pinning in a buffer pool.
//
// `capacity` bounds the number of cached responses (0 = unbounded, the
// seed's behaviour). The bound is enforced per shard (ceil(capacity /
// num_shards) each), which keeps eviction decisions local and — because
// sharding is deterministic — reproducible across runs. This makes the
// O(K)-space discussion of section 3.3 a measurable knob: a bounded cache
// trades re-queries (charged again on re-fetch) for memory.

namespace histwalk::access {

struct HistoryCacheOptions {
  // Maximum number of cached neighbor lists; 0 means unbounded.
  uint64_t capacity = 0;
  // Number of independent LRU shards; clamped to >= 1.
  uint32_t num_shards = 8;
};

struct HistoryCacheStats {
  uint64_t hits = 0;        // Get() found the entry
  uint64_t misses = 0;      // Get() did not
  uint64_t insertions = 0;  // Put() stored a new entry
  uint64_t evictions = 0;   // entries displaced by the capacity bound
  uint64_t entries = 0;     // currently resident
  uint64_t bytes = 0;       // current footprint (HistoryBytes-compatible)

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

class HistoryCache {
 public:
  // A cached response. Holding the handle keeps the neighbor list alive
  // even after the entry is evicted.
  using Entry = std::shared_ptr<const std::vector<graph::NodeId>>;

  explicit HistoryCache(HistoryCacheOptions options = {});

  HistoryCache(const HistoryCache&) = delete;
  HistoryCache& operator=(const HistoryCache&) = delete;

  // Looks up the response for `v`, refreshing its LRU position. Returns a
  // null handle on miss. Thread-safe; hit/miss counters are exact under
  // concurrency.
  Entry Get(graph::NodeId v);

  // Stores the response for `v`, evicting the shard's LRU tail if the shard
  // is full. If `v` is already resident the existing entry is returned
  // unchanged (idempotent under concurrent double-fetch). Thread-safe.
  // `inserted`, when non-null, reports whether this call created a new
  // entry (false = the id was already resident) — the signal the journaling
  // layer uses to log each response exactly once.
  Entry Put(graph::NodeId v, std::span<const graph::NodeId> neighbors,
            bool* inserted = nullptr);

  // Membership probe with no stats or LRU side effects.
  bool Contains(graph::NodeId v) const;

  // Drops every entry and resets entries/bytes; cumulative counters
  // (hits/misses/insertions/evictions) are preserved.
  void Clear();

  // Aggregated over all shards. Consistency under concurrent writers: each
  // shard's counters are snapshotted atomically (under that shard's mutex),
  // but shards are read one after another, so the aggregate is NOT a
  // point-in-time snapshot of the whole cache. What IS guaranteed, because
  // every per-shard snapshot is internally consistent:
  //   * entries == insertions - evictions, as long as Clear() has not been
  //     called (the identity holds per shard, so it survives summation;
  //     Clear() drops residents WITHOUT counting them as capacity
  //     evictions, re-baselining the identity);
  //   * entries never exceeds num_shards * shard_capacity when bounded;
  //   * cumulative counters (hits/misses/insertions/evictions) are
  //     monotone non-decreasing across successive stats() calls from one
  //     thread.
  HistoryCacheStats stats() const;
  uint64_t entry_count() const { return stats().entries; }
  // Approximate heap footprint of resident entries, in bytes — the access
  // layer's contribution to HistoryBytes() reporting.
  uint64_t MemoryBytes() const { return stats().bytes; }

  uint32_t num_shards() const { return num_shards_; }
  uint64_t capacity() const { return options_.capacity; }
  // Per-shard slice of the capacity bound (0 = unbounded).
  uint64_t shard_capacity() const { return shard_capacity_; }

  // Deterministic shard assignment: depends only on `v` and `num_shards`,
  // never on run order or platform.
  static uint32_t ShardOf(graph::NodeId v, uint32_t num_shards);

  // ---- export/import seam (the store layer's view of the cache) ----------

  // One exported cache entry: the node id and a pinned handle to its
  // neighbor list (valid even if the entry is evicted after the export).
  struct ExportedEntry {
    graph::NodeId node;
    Entry neighbors;
  };

  // Point-in-time snapshot of one shard, taken under that shard's lock, so
  // it is internally consistent even while other threads insert. Entries
  // come out least-recently-used first: replaying them through Put() in
  // order reconstructs the shard's exact LRU order (each Put pushes to the
  // front). Shards are exported independently, so a whole-cache export
  // under concurrent writers is a per-shard-consistent prefix, not a global
  // point-in-time snapshot — the same contract as stats().
  std::vector<ExportedEntry> ExportShard(uint32_t shard) const;

  // A (node, neighbors) pair headed into the cache from a store load.
  struct ImportEntry {
    graph::NodeId node;
    std::span<const graph::NodeId> neighbors;
  };

  // Bulk insert with Put() semantics (idempotent per id, evicting, counted
  // as insertions so the entries == insertions - evictions identity is
  // preserved). Entries are grouped by shard and each shard's group lands
  // under a single lock acquisition, in the order given — feed a shard's
  // ExportShard() output to reproduce its LRU order exactly. Returns the
  // number of entries that were actually new. Thread-safe.
  uint64_t BulkPut(std::span<const ImportEntry> entries);

 private:
  struct Slot {
    Entry entry;
    std::list<graph::NodeId>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<graph::NodeId> lru;  // front = most recently used
    std::unordered_map<graph::NodeId, Slot> map;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t bytes = 0;
  };

  static uint64_t EntryBytes(const std::vector<graph::NodeId>& neighbors);

  // Insert under an already-held shard lock (shared by Put and BulkPut).
  Entry PutLocked(Shard& shard, graph::NodeId v,
                  std::span<const graph::NodeId> neighbors, bool* inserted);

  HistoryCacheOptions options_;
  uint32_t num_shards_;
  uint64_t shard_capacity_;  // 0 = unbounded
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace histwalk::access

#endif  // HISTWALK_ACCESS_HISTORY_CACHE_H_
