#ifndef HISTWALK_ACCESS_HISTORY_CACHE_H_
#define HISTWALK_ACCESS_HISTORY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "obs/histogram.h"
#include "util/arena.h"
#include "util/rw_spinlock.h"

// Capacity-bounded store of neighbor-query responses — the sampler's
// "history" (section 2.1) promoted from an implementation detail of
// GraphAccess to a first-class subsystem.
//
// The cache is sharded: a node id maps to a shard by a fixed multiplicative
// hash, and each shard runs an independent CLOCK (second-chance) ring under
// its own lock, so concurrent walkers sharing one cache contend only per
// shard. Entries are handed out as pinned util::BlockRef handles — one
// refcounted allocation per response; eviction drops the cache's reference
// while any walker still holding the handle keeps its span valid — the
// analogue of page pinning in a buffer pool.
//
// The hit path is read-mostly by design. An earlier revision refreshed a
// strict-LRU list on every Get, which meant an exclusive mutex and a list
// splice per hit; once shared history absorbs most wire fetches (the whole
// point of the paper), that exclusive lock became the measured bottleneck
// under multi-walker and multi-tenant load. Get now takes the shard lock in
// SHARED mode — any number of concurrent hits proceed in parallel — and
// records recency by setting a per-entry atomic reference bit. Only writers
// (Put / eviction / Clear / BulkPut) take the lock exclusively, and the
// clock hand gives every referenced entry a second chance before evicting,
// approximating LRU with no per-hit mutation beyond one relaxed atomic
// store. The key -> slot index is a flat open-addressed table (power-of-two
// capacity, linear probing, backward-shift deletion) rather than a node-
// based hash map: a hit probes one contiguous cell array instead of chasing
// bucket pointers through a prime-modulo map, which is most of the
// single-threaded win. bench_micro_cache's contended mode measures the
// difference against the retained splice-LRU baseline;
// scripts/bench_report.py records it in BENCH_cache.json.
//
// `capacity` bounds the number of cached responses (0 = unbounded, the
// seed's behaviour). The bound is enforced per shard (ceil(capacity /
// num_shards) each), which keeps eviction decisions local and — because
// sharding is deterministic — reproducible across runs. This makes the
// O(K)-space discussion of section 3.3 a measurable knob: a bounded cache
// trades re-queries (charged again on re-fetch) for memory.

namespace histwalk::access {

struct HistoryCacheOptions {
  // Maximum number of cached neighbor lists; 0 means unbounded.
  uint64_t capacity = 0;
  // Number of independent clock shards; clamped to >= 1.
  uint32_t num_shards = 8;
  // Attach util::RwSpinLockCounters to every shard lock, so shard_heat()
  // reports shared/exclusive acquisition and contention counts. Off by
  // default: attached counters cost two relaxed fetch_adds per
  // acquisition on the hottest lock in the stack (detached: one load and
  // a predicted branch). crawl_cli --serve turns it on.
  bool profile_locks = false;
};

struct HistoryCacheStats {
  uint64_t hits = 0;        // Get() found the entry
  uint64_t misses = 0;      // Get() did not
  uint64_t insertions = 0;  // Put() stored a new entry
  uint64_t evictions = 0;   // entries displaced by the capacity bound
  uint64_t entries = 0;     // currently resident
  uint64_t bytes = 0;       // current footprint (HistoryBytes-compatible)

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

// Point-in-time view of one shard — the scrapeable heatmap that makes
// shard imbalance (a hot shard soaking up the hits, a cold one churning
// its clock) visible without perturbing the cache. Counter semantics
// match HistoryCacheStats; `sweep` is the distribution of clock-hand
// steps per eviction (0 = the hand's first candidate was unreferenced; a
// fat tail means the shard's working set is referenced wall-to-wall and
// eviction is scanning hard). Lock counters are zero unless
// HistoryCacheOptions::profile_locks was set.
struct HistoryCacheShardHeat {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
  obs::Log2Histogram sweep;  // clock-hand steps per eviction
  uint64_t lock_shared_acquires = 0;
  uint64_t lock_shared_contended = 0;
  uint64_t lock_exclusive_acquires = 0;
  uint64_t lock_exclusive_contended = 0;
};

class HistoryCache {
 public:
  // A cached response: a pinned handle to one refcounted block holding the
  // neighbor list (util/arena.h). Holding the handle keeps the list alive
  // even after the entry is evicted.
  using Entry = util::BlockRef<graph::NodeId>;

  explicit HistoryCache(HistoryCacheOptions options = {});

  HistoryCache(const HistoryCache&) = delete;
  HistoryCache& operator=(const HistoryCache&) = delete;

  // Looks up the response for `v`, marking its clock reference bit (the
  // second-chance recency signal). Returns a null handle on miss. Thread-
  // safe and lock-light: hits share the shard lock with each other and
  // never exclude other readers; hit/miss counters are exact under
  // concurrency.
  Entry Get(graph::NodeId v);

  // Batched Get: `out[i]` receives the entry for `ids[i]` (null on miss).
  // Lookups are grouped by shard and each touched shard's lock is acquired
  // once in shared mode for its whole group — the batch-stepping analogue
  // of BulkPut. Hit/miss accounting and reference-bit marking match
  // one-at-a-time Get exactly. `out` must have ids.size() elements.
  void GetBatch(std::span<const graph::NodeId> ids, Entry* out);

  // Stores the response for `v`, evicting via the shard's clock hand if the
  // shard is full. If `v` is already resident the existing entry is
  // returned unchanged with its reference bit set (idempotent under
  // concurrent double-fetch). Thread-safe. `inserted`, when non-null,
  // reports whether this call created a new entry (false = the id was
  // already resident) — the signal the journaling layer uses to log each
  // response exactly once.
  Entry Put(graph::NodeId v, std::span<const graph::NodeId> neighbors,
            bool* inserted = nullptr);

  // Membership probe with NO side effects of any kind: no stats counters,
  // no reference-bit marking, no eviction-order perturbation. Probing a
  // would-be victim with Contains() leaves it exactly as evictable as
  // before — the guarantee the pipeline's late-hit probe relies on.
  bool Contains(graph::NodeId v) const;

  // Drops every entry and resets entries/bytes; cumulative counters
  // (hits/misses/insertions/evictions) are preserved.
  void Clear();

  // Aggregated over all shards. Consistency under concurrent writers: each
  // shard's writer-side counters (insertions/evictions/entries/bytes) are
  // snapshotted under that shard's lock, but shards are read one after
  // another, so the aggregate is NOT a point-in-time snapshot of the whole
  // cache. Reading stats perturbs nothing (no reference bits, no
  // counters). What IS guaranteed, because every per-shard snapshot is
  // internally consistent:
  //   * entries == insertions - evictions, as long as Clear() has not been
  //     called (the identity holds per shard, so it survives summation;
  //     Clear() drops residents WITHOUT counting them as capacity
  //     evictions, re-baselining the identity);
  //   * entries never exceeds num_shards * shard_capacity when bounded;
  //   * cumulative counters (hits/misses/insertions/evictions) are
  //     monotone non-decreasing across successive stats() calls from one
  //     thread. hits/misses are lock-free atomics bumped by concurrent
  //     readers, so a snapshot may lag in-flight Gets by a few counts; at
  //     quiescence they are exact.
  HistoryCacheStats stats() const;
  // Per-shard slice of stats() plus the sweep-length distribution and
  // (when profile_locks is on) shard-lock contention counters; taken
  // under the shard's shared lock, so it is internally consistent the
  // same way one shard's stats() contribution is.
  HistoryCacheShardHeat shard_heat(uint32_t shard) const;
  bool profile_locks() const { return options_.profile_locks; }
  uint64_t entry_count() const { return stats().entries; }
  // Approximate heap footprint of resident entries, in bytes — the access
  // layer's contribution to HistoryBytes() reporting.
  uint64_t MemoryBytes() const { return stats().bytes; }

  uint32_t num_shards() const { return num_shards_; }
  uint64_t capacity() const { return options_.capacity; }
  // Per-shard slice of the capacity bound (0 = unbounded).
  uint64_t shard_capacity() const { return shard_capacity_; }

  // Deterministic shard assignment: depends only on `v` and `num_shards`,
  // never on run order or platform.
  static uint32_t ShardOf(graph::NodeId v, uint32_t num_shards);

  // ---- export/import seam (the store layer's view of the cache) ----------

  // One exported cache entry: the node id and a pinned handle to its
  // neighbor list (valid even if the entry is evicted after the export).
  struct ExportedEntry {
    graph::NodeId node;
    Entry neighbors;
  };

  // Point-in-time snapshot of one shard, taken under that shard's lock, so
  // it is internally consistent even while other threads insert. Entries
  // come out in CLOCK order starting at the hand — the next eviction
  // candidate first (the contract used to be strict-LRU order; with the
  // second-chance design, ring position is the recency structure and
  // reference bits are deliberately not exported). Replaying the export
  // through Put() in order reconstructs the ring with the hand normalized
  // to slot 0, so a BulkPut round-trip reproduces residency and the
  // eviction scan order exactly; only un-exported reference bits (a
  // one-lap grace, at most) differ. Shards are exported independently, so
  // a whole-cache export under concurrent writers is a per-shard-consistent
  // prefix, not a global point-in-time snapshot — the same contract as
  // stats().
  std::vector<ExportedEntry> ExportShard(uint32_t shard) const;

  // A (node, neighbors) pair headed into the cache from a store load.
  struct ImportEntry {
    graph::NodeId node;
    std::span<const graph::NodeId> neighbors;
  };

  // Batched Put: entries are grouped by shard and each touched shard's
  // group lands under a single exclusive lock acquisition, in the order
  // given — feed a shard's ExportShard() output to reproduce its clock
  // order exactly. Per-entry results mirror Put(): when non-null,
  // `out_entries[i]` receives the pinned handle (resident or fresh) and
  // `inserted[i]` whether entry i was genuinely new; both must then have
  // entries.size() elements. Counted as insertions, so the
  // entries == insertions - evictions identity is preserved. Returns the
  // number of entries that were actually new. Thread-safe.
  uint64_t PutBatch(std::span<const ImportEntry> entries,
                    Entry* out_entries = nullptr, bool* inserted = nullptr);

  // Bulk insert with Put() semantics — PutBatch without per-entry results
  // (the store layer's load path).
  uint64_t BulkPut(std::span<const ImportEntry> entries) {
    return PutBatch(entries);
  }

 private:
  // One clock-ring position. `ref` is the second-chance bit: set by Get
  // (and by a resident Put) under the SHARED lock, cleared and consumed by
  // the sweeping hand under the exclusive lock — hence atomic.
  struct Slot {
    graph::NodeId key = 0;
    Entry entry;
    std::atomic<uint8_t> ref{0};
    uint64_t bytes = 0;  // EntryBytes at insert, for O(1) evict accounting
  };

  // Flat open-addressed key -> slot index: one contiguous cell array,
  // power-of-two capacity with linear probing, backward-shift deletion (no
  // tombstones, so probe chains never rot under the Put/evict churn of a
  // full cache). Cells hold the Slot pointer directly, so a hit is probe +
  // one deref — no hop through the ring vector. All mutation happens under
  // the shard's exclusive lock; concurrent Find()s run under the shared
  // lock and touch nothing.
  class FlatIndex {
   public:
    // The slot holding `key`, or nullptr.
    Slot* Find(graph::NodeId key) const {
      if (cells_.empty()) return nullptr;
      const uint32_t mask = static_cast<uint32_t>(cells_.size()) - 1;
      for (uint32_t i = Home(key, mask);; i = (i + 1) & mask) {
        const Cell& cell = cells_[i];
        if (cell.slot == nullptr) return nullptr;
        if (cell.key == key) return cell.slot;
      }
    }

    // `key` must not already be present.
    void Insert(graph::NodeId key, Slot* slot);
    // True if `key` was present and removed.
    bool Erase(graph::NodeId key);
    void Clear() {
      cells_.clear();
      size_ = 0;
    }
    size_t size() const { return size_; }

   private:
    struct Cell {
      graph::NodeId key;
      Slot* slot;  // nullptr marks an empty cell
    };

    static uint32_t Home(graph::NodeId key, uint32_t mask) {
      // High multiplicative-hash bits, distinct from the low bits ShardOf
      // consumes, so one shard's keys still spread within its table.
      uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
      return static_cast<uint32_t>(h >> 32) & mask;
    }
    void InsertNoGrow(graph::NodeId key, Slot* slot);
    void Grow();

    std::vector<Cell> cells_;
    size_t size_ = 0;
  };
  struct Shard {
    // Shared by the hit path (Get/GetBatch/Contains/stats/ExportShard),
    // exclusive for mutation (Put/PutBatch/Clear). A one-word spinlock,
    // not std::shared_mutex: the critical sections are a few probes long,
    // and pthread_rwlock overhead would be several times the work guarded.
    mutable util::RwSpinLock mu;
    FlatIndex index;  // key -> slot
    // The clock ring; unique_ptr keeps Slot addresses (and their atomics)
    // stable while the vector grows.
    std::vector<std::unique_ptr<Slot>> ring;
    uint32_t hand = 0;  // next eviction scan position
    std::atomic<uint64_t> hits{0};    // reader-side, lock-free
    std::atomic<uint64_t> misses{0};  // reader-side, lock-free
    uint64_t insertions = 0;          // writer-side, under exclusive mu
    uint64_t evictions = 0;
    uint64_t bytes = 0;
    // Clock-hand steps per eviction; writer-side, under exclusive mu.
    obs::Log2Histogram sweep;
    // Contention telemetry sink; only wired to mu when profile_locks.
    util::RwSpinLockCounters lock_counters;
  };

  static uint64_t EntryBytes(const util::ArrayBlock<graph::NodeId>& block);

  // Insert under an already-held exclusive shard lock (shared by Put and
  // PutBatch).
  Entry PutLocked(Shard& shard, graph::NodeId v,
                  std::span<const graph::NodeId> neighbors, bool* inserted);

  // ShardOf(v, num_shards_), with the modulo strength-reduced to a mask
  // when num_shards_ is a power of two (the common case — the default is
  // 8). Bit-identical to the static method; just cheaper on the hot path.
  uint32_t ShardIndexOf(graph::NodeId v) const {
    uint64_t h = static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ull;
    h ^= h >> 32;
    return static_cast<uint32_t>(shards_pow2_ ? (h & (num_shards_ - 1))
                                              : (h % num_shards_));
  }

  HistoryCacheOptions options_;
  uint32_t num_shards_;
  bool shards_pow2_;
  uint64_t shard_capacity_;  // 0 = unbounded
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace histwalk::access

#endif  // HISTWALK_ACCESS_HISTORY_CACHE_H_
