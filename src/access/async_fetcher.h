#ifndef HISTWALK_ACCESS_ASYNC_FETCHER_H_
#define HISTWALK_ACCESS_ASYNC_FETCHER_H_

#include "access/history_cache.h"
#include "graph/graph.h"
#include "util/status.h"

// Seam between the access layer and an asynchronous fetch client.
//
// By default SharedAccess resolves a cache miss synchronously: the missing
// walker's own thread charges the group budget and calls the backend. An
// AsyncFetcher attached to the group replaces that miss path with a client
// that may batch, pipeline, and deduplicate fetches across walkers
// (net::RequestPipeline). The call still blocks from the walker's point of
// view — a walker cannot take its next step without the neighbor list —
// but while one walker waits, the fetcher overlaps the other walkers'
// outstanding requests on the wire instead of letting each one pay a full
// round trip alone.

namespace histwalk::access {

class AsyncFetcher {
 public:
  struct Fetched {
    // The response, already resident in the shared cache. Non-null.
    HistoryCache::Entry entry;
    // True when THIS call triggered the wire fetch; false when it joined a
    // request already in flight (singleflight) or was answered by the
    // cache. Feeds SharedAccess::charged_fetches() accounting.
    bool charged_this_call = false;
  };

  virtual ~AsyncFetcher() = default;

  // Returns the neighbor response for `v`, issuing a backend fetch only if
  // none is already in flight. Blocks until the response lands. Fails with
  // kBudgetExhausted when the group's fetch budget refuses the wire
  // request. Thread-safe.
  virtual util::Result<Fetched> FetchShared(graph::NodeId v) = 0;
};

}  // namespace histwalk::access

#endif  // HISTWALK_ACCESS_ASYNC_FETCHER_H_
