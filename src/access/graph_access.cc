#include "access/graph_access.h"

namespace histwalk::access {

GraphAccess::GraphAccess(const graph::Graph* graph,
                         const attr::AttributeTable* attributes,
                         GraphAccessOptions options)
    : graph_(graph),
      attributes_(attributes),
      options_(options),
      queried_(graph->num_nodes(), false) {
  HW_CHECK(graph_ != nullptr);
  if (attributes_ != nullptr) {
    HW_CHECK(attributes_->num_nodes() == graph_->num_nodes());
  }
}

util::Result<std::span<const graph::NodeId>> GraphAccess::Neighbors(
    graph::NodeId v) {
  if (v >= graph_->num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  ++stats_.total_queries;
  if (queried_[v]) {
    ++stats_.cache_hits;
    return util::Result<std::span<const graph::NodeId>>(
        graph_->Neighbors(v));
  }
  if (options_.query_budget != 0 &&
      stats_.unique_queries >= options_.query_budget) {
    --stats_.total_queries;  // the refused call is not issued at all
    return util::Status::ResourceExhausted("query budget exhausted");
  }
  queried_[v] = true;
  ++stats_.unique_queries;
  return util::Result<std::span<const graph::NodeId>>(graph_->Neighbors(v));
}

util::Result<double> GraphAccess::Attribute(graph::NodeId v,
                                            attr::AttrId attr) const {
  if (v >= graph_->num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  if (attributes_ == nullptr || attr >= attributes_->num_attributes()) {
    return util::Status::NotFound("no such attribute");
  }
  return attributes_->Value(v, attr);
}

util::Result<uint32_t> GraphAccess::SummaryDegree(graph::NodeId v) const {
  if (v >= graph_->num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  return graph_->Degree(v);
}

uint64_t GraphAccess::remaining_budget() const {
  if (options_.query_budget == 0) return UINT64_MAX;
  return options_.query_budget - stats_.unique_queries;
}

void GraphAccess::ResetAccounting() {
  stats_ = QueryStats{};
  queried_.assign(graph_->num_nodes(), false);
}

}  // namespace histwalk::access
