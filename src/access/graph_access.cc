#include "access/graph_access.h"

namespace histwalk::access {

GraphAccess::GraphAccess(const graph::Graph* graph,
                         const attr::AttributeTable* attributes,
                         GraphAccessOptions options)
    : graph_(graph),
      attributes_(attributes),
      options_(options),
      queried_(graph->num_nodes(), false) {
  HW_CHECK(graph_ != nullptr);
  if (attributes_ != nullptr) {
    HW_CHECK(attributes_->num_nodes() == graph_->num_nodes());
  }
}

util::Result<std::span<const graph::NodeId>> GraphAccess::Neighbors(
    graph::NodeId v) {
  if (v >= graph_->num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  ++stats_.total_queries;
  if (queried_[v]) {
    ++stats_.cache_hits;
    return FetchNeighbors(v);
  }
  if (options_.query_budget != 0 &&
      stats_.unique_queries >= options_.query_budget) {
    --stats_.total_queries;  // the refused call is not issued at all
    return util::Status::ResourceExhausted("query budget exhausted");
  }
  queried_[v] = true;
  ++stats_.unique_queries;
  return FetchNeighbors(v);
}

util::Result<double> GraphAccess::Attribute(graph::NodeId v,
                                            attr::AttrId attr) const {
  return FetchAttribute(v, attr);
}

util::Result<uint32_t> GraphAccess::SummaryDegree(graph::NodeId v) const {
  return FetchSummaryDegree(v);
}

uint64_t GraphAccess::remaining_budget() const {
  if (options_.query_budget == 0) return UINT64_MAX;
  // set_query_budget() may tighten the budget below what is already spent;
  // clamp instead of wrapping around to "practically unlimited".
  if (stats_.unique_queries >= options_.query_budget) return 0;
  return options_.query_budget - stats_.unique_queries;
}

void GraphAccess::ResetAccounting() {
  stats_ = QueryStats{};
  queried_.assign(graph_->num_nodes(), false);
}

uint64_t GraphAccess::HistoryBytes() const {
  // One membership bit per node (the vector<bool> cache index). The
  // neighbor lists themselves live in the Graph, which plays the service
  // here, not the history.
  return (queried_.size() + 7) / 8;
}

util::Result<std::span<const graph::NodeId>> GraphAccess::FetchNeighbors(
    graph::NodeId v) const {
  if (v >= graph_->num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  return util::Result<std::span<const graph::NodeId>>(graph_->Neighbors(v));
}

util::Result<double> GraphAccess::FetchAttribute(graph::NodeId v,
                                                 attr::AttrId attr) const {
  if (v >= graph_->num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  if (attributes_ == nullptr || attr >= attributes_->num_attributes()) {
    return util::Status::NotFound("no such attribute");
  }
  return attributes_->Value(v, attr);
}

util::Result<uint32_t> GraphAccess::FetchSummaryDegree(graph::NodeId v) const {
  if (v >= graph_->num_nodes()) {
    return util::Status::OutOfRange("unknown node id");
  }
  return graph_->Degree(v);
}

}  // namespace histwalk::access
