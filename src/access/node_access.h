#ifndef HISTWALK_ACCESS_NODE_ACCESS_H_
#define HISTWALK_ACCESS_NODE_ACCESS_H_

#include <cstdint>
#include <span>

#include "attr/attribute.h"
#include "graph/graph.h"
#include "util/status.h"

// The paper's access model for online social networks (section 2.1).
//
// A third party cannot read the graph; the only operation is a local
// neighborhood query: given a user id, the service returns that user's
// neighbor list plus profile attributes. Real services additionally embed a
// short per-neighbor summary in the response (e.g. Twitter follower lists
// carry follower counts), which is what lets GNRW stratify neighbors and
// MHRW read proposed-neighbor degrees without extra queries. The interface
// mirrors that split:
//
//  * Neighbors(v)          - THE charged operation. Counted once per unique
//                            v (the paper's query cost: duplicates come from
//                            the local cache for free).
//  * Attribute(v, a),
//    SummaryDegree(v)      - free metadata from query responses (the "rich
//                            response" model). Walkers that must not rely on
//                            it simply never call it.
//
// Implementations also expose the query accounting used by every
// experiment: unique_query_count() is the x-axis of all the paper's plots.

namespace histwalk::access {

struct QueryStats {
  uint64_t total_queries = 0;   // all Neighbors() calls
  uint64_t unique_queries = 0;  // charged calls (distinct nodes)
  uint64_t cache_hits = 0;      // served locally
};

class NodeAccess {
 public:
  virtual ~NodeAccess() = default;

  // Issues (or replays from cache) the neighborhood query for `v`.
  // Fails with a budget-stop status once the query budget is spent and the
  // answer is not cached — kResourceExhausted for an access-private budget,
  // kBudgetExhausted for a shared group quota (util::IsBudgetStop matches
  // both) — and with kOutOfRange for an unknown id.
  //
  // Lifetime contract: the returned span is guaranteed valid only until the
  // next Neighbors() call on the same access. Implementations may hand out
  // longer-lived spans (GraphAccess points into the immutable CSR), but
  // callers must not rely on that — cache-backed accesses recycle response
  // buffers. Copy the list to keep it across calls.
  virtual util::Result<std::span<const graph::NodeId>> Neighbors(
      graph::NodeId v) = 0;

  // Free response metadata (see header comment).
  virtual util::Result<double> Attribute(graph::NodeId v,
                                         attr::AttrId attr) const = 0;
  virtual util::Result<uint32_t> SummaryDegree(graph::NodeId v) const = 0;

  // Number of users in the network. Real services expose this only
  // approximately; it is provided for estimators that need a population
  // size (e.g. SUM aggregates) and for choosing random seeds in tests.
  virtual uint64_t num_nodes() const = 0;

  virtual const QueryStats& stats() const = 0;
  uint64_t unique_query_count() const { return stats().unique_queries; }

  // Remaining budget in unique queries; returns UINT64_MAX when unlimited.
  virtual uint64_t remaining_budget() const = 0;

  // Clears the cache and the accounting (budget is restored in full).
  virtual void ResetAccounting() = 0;

  // Approximate bytes of response history this access retains (cache
  // membership bits, cached neighbor lists, ...). Complements
  // core::Walker::HistoryBytes(), which covers walker-side circulation
  // state; together they account the full O(K) space of section 3.3.
  virtual uint64_t HistoryBytes() const { return 0; }
};

}  // namespace histwalk::access

#endif  // HISTWALK_ACCESS_NODE_ACCESS_H_
