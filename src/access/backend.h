#ifndef HISTWALK_ACCESS_BACKEND_H_
#define HISTWALK_ACCESS_BACKEND_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "attr/attribute.h"
#include "graph/graph.h"
#include "util/status.h"

// The raw service interface underneath the access layer.
//
// NodeAccess (node_access.h) bundles three concerns: issuing neighborhood
// queries, remembering which answers were already fetched (the paper's
// "history"), and charging a query budget. AccessBackend isolates the first
// concern: it is the uncharged, uncached wire protocol — "ask the service
// for N(v)" — with no memory and no accounting. GraphAccess implements it
// against an in-memory Graph (the simulated API of section 6.1); a real
// HTTP crawler would be another implementation. History and budgeting live
// above the backend, in SharedAccess + HistoryCache, so every backend gets
// them for free.

namespace histwalk::access {

class AccessBackend {
 public:
  virtual ~AccessBackend() = default;

  // Fetches the neighbor list of `v` from the service. Every call is a real
  // (charged-by-the-caller) query; backends do no caching. The returned span
  // must stay valid for the lifetime of the backend (GraphAccess points into
  // the immutable CSR arrays); callers that cache responses copy them.
  // Must be safe to call concurrently.
  virtual util::Result<std::span<const graph::NodeId>> FetchNeighbors(
      graph::NodeId v) const = 0;

  // Fetches several neighbor lists at once, positionally aligned with
  // `ids`. Transports with a multi-get endpoint (net::RemoteBackend) carry
  // the whole batch in ONE wire request; the default implementation loops
  // over FetchNeighbors, one request per DISTINCT id — repeated ids within
  // a batch share the first occurrence's result, so a batch never costs
  // (or budget-charges) the same node twice. Per-id failures land in the
  // corresponding slot without failing the rest of the batch. Must be safe
  // to call concurrently.
  virtual std::vector<util::Result<std::span<const graph::NodeId>>>
  FetchNeighborsBatch(std::span<const graph::NodeId> ids) const;

  // Free response metadata (the "rich response" model of section 2.1).
  virtual util::Result<double> FetchAttribute(graph::NodeId v,
                                              attr::AttrId attr) const = 0;
  virtual util::Result<uint32_t> FetchSummaryDegree(graph::NodeId v) const = 0;

  virtual uint64_t num_nodes() const = 0;

  // Short label for reports ("graph", "http", ...).
  virtual std::string name() const = 0;
};

}  // namespace histwalk::access

#endif  // HISTWALK_ACCESS_BACKEND_H_
