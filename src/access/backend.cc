#include "access/backend.h"

namespace histwalk::access {

std::vector<util::Result<std::span<const graph::NodeId>>>
AccessBackend::FetchNeighborsBatch(std::span<const graph::NodeId> ids) const {
  std::vector<util::Result<std::span<const graph::NodeId>>> results;
  results.reserve(ids.size());
  for (graph::NodeId v : ids) results.push_back(FetchNeighbors(v));
  return results;
}

}  // namespace histwalk::access
