#include "access/backend.h"

#include <unordered_map>

namespace histwalk::access {

std::vector<util::Result<std::span<const graph::NodeId>>>
AccessBackend::FetchNeighborsBatch(std::span<const graph::NodeId> ids) const {
  std::vector<util::Result<std::span<const graph::NodeId>>> results;
  results.reserve(ids.size());
  // Deduplicate within the batch: each distinct id costs exactly one
  // FetchNeighbors call, and repeated ids share the first occurrence's
  // result (success or failure alike). Callers charge budget per underlying
  // fetch, so a sloppy batch can never double-charge one node.
  std::unordered_map<graph::NodeId, size_t> first_slot;
  first_slot.reserve(ids.size());
  for (graph::NodeId v : ids) {
    auto [it, is_new] = first_slot.try_emplace(v, results.size());
    if (is_new) {
      results.push_back(FetchNeighbors(v));
    } else {
      results.push_back(results[it->second]);
    }
  }
  return results;
}

}  // namespace histwalk::access
