#include "access/rate_limiter.h"

#include "util/check.h"

namespace histwalk::access {

RateLimiter::RateLimiter(RateLimitPolicy policy) : policy_(policy) {
  HW_CHECK(policy_.calls_per_window > 0);
  HW_CHECK(policy_.window_seconds > 0);
}

uint64_t RateLimiter::RecordQuery() {
  if (window_used_ >= policy_.calls_per_window) {
    // Bucket empty: wait (virtually) for the next window.
    window_start_ += policy_.window_seconds;
    now_ = window_start_;
    window_used_ = 0;
  }
  ++window_used_;
  ++queries_issued_;
  return now_;
}

uint64_t RateLimiter::EstimateSeconds(const RateLimitPolicy& policy,
                                      uint64_t num_queries) {
  if (num_queries == 0) return 0;
  uint64_t full_windows = (num_queries - 1) / policy.calls_per_window;
  return full_windows * policy.window_seconds;
}

}  // namespace histwalk::access
