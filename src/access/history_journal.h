#ifndef HISTWALK_ACCESS_HISTORY_JOURNAL_H_
#define HISTWALK_ACCESS_HISTORY_JOURNAL_H_

#include <span>

#include "access/history_cache.h"
#include "graph/graph.h"

// Observer seam for durable history: the access layer announces every NEW
// neighbor-list insertion into a shared HistoryCache, and a journal
// implementation (store::HistoryStore) makes it durable — append it to a
// write-ahead log, fold the cache into a snapshot when the log grows past
// its checkpoint threshold, and so on.
//
// Mirrors the AsyncFetcher seam: the interface lives in access/ so that
// SharedAccessGroup and net::RequestPipeline can notify it without the
// access layer depending on store/ (store depends on access, never the
// reverse).

namespace histwalk::access {

class HistoryJournal {
 public:
  virtual ~HistoryJournal() = default;

  // Called once per entry that was genuinely inserted into `cache` (never
  // for a Put() that found the id resident), AFTER the insert — the cache
  // is authoritative, the journal trails it. `cache` is the cache the entry
  // landed in, handed through so checkpoint-style implementations can fold
  // it into a snapshot without holding their own pointer. Must be
  // thread-safe: concurrent walkers and pipeline workers insert
  // concurrently. Must not call back into the access layer's miss paths.
  virtual void OnCacheInsert(graph::NodeId v,
                             std::span<const graph::NodeId> neighbors,
                             HistoryCache& cache) = 0;
};

}  // namespace histwalk::access

#endif  // HISTWALK_ACCESS_HISTORY_JOURNAL_H_
