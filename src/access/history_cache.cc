#include "access/history_cache.h"

#include "util/check.h"

namespace histwalk::access {

HistoryCache::HistoryCache(HistoryCacheOptions options) : options_(options) {
  num_shards_ = options_.num_shards == 0 ? 1 : options_.num_shards;
  if (options_.capacity == 0) {
    shard_capacity_ = 0;
  } else {
    // Ceiling split so num_shards * shard_capacity >= capacity; a skewed
    // key distribution can therefore hold slightly more than `capacity` in
    // total, never less per shard than its fair share.
    shard_capacity_ = (options_.capacity + num_shards_ - 1) / num_shards_;
    if (shard_capacity_ == 0) shard_capacity_ = 1;
  }
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

uint32_t HistoryCache::ShardOf(graph::NodeId v, uint32_t num_shards) {
  HW_DCHECK(num_shards > 0);
  // Fibonacci hashing: spreads consecutive node ids across shards while
  // staying bit-reproducible everywhere.
  uint64_t h = static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  return static_cast<uint32_t>(h % num_shards);
}

uint64_t HistoryCache::EntryBytes(const std::vector<graph::NodeId>& neighbors) {
  // Payload plus the per-entry bookkeeping (map slot, LRU node, control
  // block); approximate, but monotone in list length and stable across runs.
  return neighbors.capacity() * sizeof(graph::NodeId) +
         sizeof(std::vector<graph::NodeId>) + sizeof(Slot) +
         2 * sizeof(void*) + sizeof(graph::NodeId);
}

HistoryCache::Entry HistoryCache::Get(graph::NodeId v) {
  Shard& shard = shards_[ShardOf(v, num_shards_)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(v);
  if (it == shard.map.end()) {
    ++shard.misses;
    return Entry();
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  return it->second.entry;
}

HistoryCache::Entry HistoryCache::PutLocked(
    Shard& shard, graph::NodeId v, std::span<const graph::NodeId> neighbors,
    bool* inserted) {
  auto it = shard.map.find(v);
  if (it != shard.map.end()) {
    // Lost a fetch race with another walker; keep the resident entry.
    if (inserted != nullptr) *inserted = false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return it->second.entry;
  }
  if (shard_capacity_ != 0 && shard.map.size() >= shard_capacity_) {
    graph::NodeId victim = shard.lru.back();
    auto victim_it = shard.map.find(victim);
    HW_DCHECK(victim_it != shard.map.end());
    shard.bytes -= EntryBytes(*victim_it->second.entry);
    shard.lru.pop_back();
    shard.map.erase(victim_it);
    ++shard.evictions;
  }
  auto entry = std::make_shared<const std::vector<graph::NodeId>>(
      neighbors.begin(), neighbors.end());
  shard.lru.push_front(v);
  shard.map.emplace(v, Slot{entry, shard.lru.begin()});
  shard.bytes += EntryBytes(*entry);
  ++shard.insertions;
  if (inserted != nullptr) *inserted = true;
  return entry;
}

HistoryCache::Entry HistoryCache::Put(graph::NodeId v,
                                      std::span<const graph::NodeId> neighbors,
                                      bool* inserted) {
  Shard& shard = shards_[ShardOf(v, num_shards_)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return PutLocked(shard, v, neighbors, inserted);
}

std::vector<HistoryCache::ExportedEntry> HistoryCache::ExportShard(
    uint32_t shard_index) const {
  HW_CHECK(shard_index < num_shards_);
  const Shard& shard = shards_[shard_index];
  std::vector<ExportedEntry> out;
  std::lock_guard<std::mutex> lock(shard.mu);
  out.reserve(shard.map.size());
  // Walk the LRU list tail-to-front so the export reads least-recently-used
  // first (the Put() replay order that reconstructs the list).
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    auto slot = shard.map.find(*it);
    HW_DCHECK(slot != shard.map.end());
    out.push_back(ExportedEntry{*it, slot->second.entry});
  }
  return out;
}

uint64_t HistoryCache::BulkPut(std::span<const ImportEntry> entries) {
  // Group by shard first so each touched shard's lock is taken once, then
  // insert each group in its original order (preserving LRU reconstruction
  // for per-shard inputs).
  std::vector<std::vector<size_t>> by_shard(num_shards_);
  for (size_t i = 0; i < entries.size(); ++i) {
    by_shard[ShardOf(entries[i].node, num_shards_)].push_back(i);
  }
  uint64_t new_entries = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t i : by_shard[s]) {
      bool inserted = false;
      PutLocked(shard, entries[i].node, entries[i].neighbors, &inserted);
      if (inserted) ++new_entries;
    }
  }
  return new_entries;
}

bool HistoryCache::Contains(graph::NodeId v) const {
  const Shard& shard = shards_[ShardOf(v, num_shards_)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.find(v) != shard.map.end();
}

void HistoryCache::Clear() {
  for (uint32_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

HistoryCacheStats HistoryCache::stats() const {
  HistoryCacheStats total;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
    total.entries += shard.map.size();
    total.bytes += shard.bytes;
  }
  return total;
}

}  // namespace histwalk::access
