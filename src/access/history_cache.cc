#include "access/history_cache.h"

#include <mutex>
#include <shared_mutex>

#include "obs/profiler.h"
#include "util/check.h"

namespace histwalk::access {

HistoryCache::HistoryCache(HistoryCacheOptions options) : options_(options) {
  num_shards_ = options_.num_shards == 0 ? 1 : options_.num_shards;
  shards_pow2_ = (num_shards_ & (num_shards_ - 1)) == 0;
  if (options_.capacity == 0) {
    shard_capacity_ = 0;
  } else {
    // Ceiling split so num_shards * shard_capacity >= capacity; a skewed
    // key distribution can therefore hold slightly more than `capacity` in
    // total, never less per shard than its fair share.
    shard_capacity_ = (options_.capacity + num_shards_ - 1) / num_shards_;
    if (shard_capacity_ == 0) shard_capacity_ = 1;
  }
  shards_ = std::make_unique<Shard[]>(num_shards_);
  if (options_.profile_locks) {
    for (uint32_t s = 0; s < num_shards_; ++s) {
      shards_[s].mu.attach_counters(&shards_[s].lock_counters);
    }
  }
}

void HistoryCache::FlatIndex::InsertNoGrow(graph::NodeId key, Slot* slot) {
  const uint32_t mask = static_cast<uint32_t>(cells_.size()) - 1;
  uint32_t i = Home(key, mask);
  while (cells_[i].slot != nullptr) i = (i + 1) & mask;
  cells_[i] = Cell{key, slot};
}

void HistoryCache::FlatIndex::Insert(graph::NodeId key, Slot* slot) {
  // Keep load under 3/4 so probe chains stay short and Find always
  // terminates on an empty cell.
  if (cells_.empty() || (size_ + 1) * 4 > cells_.size() * 3) Grow();
  InsertNoGrow(key, slot);
  ++size_;
}

void HistoryCache::FlatIndex::Grow() {
  std::vector<Cell> old = std::move(cells_);
  cells_.assign(old.empty() ? 64 : old.size() * 2, Cell{0, nullptr});
  for (const Cell& cell : old) {
    if (cell.slot != nullptr) InsertNoGrow(cell.key, cell.slot);
  }
}

bool HistoryCache::FlatIndex::Erase(graph::NodeId key) {
  if (cells_.empty()) return false;
  const uint32_t mask = static_cast<uint32_t>(cells_.size()) - 1;
  uint32_t i = Home(key, mask);
  while (true) {
    if (cells_[i].slot == nullptr) return false;
    if (cells_[i].key == key) break;
    i = (i + 1) & mask;
  }
  // Backward-shift deletion: walk the probe chain after the hole and pull
  // back every cell whose home position does not lie in the cyclic
  // interval (i, j] — i.e. every cell the hole would otherwise cut off
  // from its home.
  uint32_t j = i;
  while (true) {
    j = (j + 1) & mask;
    if (cells_[j].slot == nullptr) break;
    const uint32_t h = Home(cells_[j].key, mask);
    const bool movable = (j > i) ? (h <= i || h > j) : (h <= i && h > j);
    if (movable) {
      cells_[i] = cells_[j];
      i = j;
    }
  }
  cells_[i].slot = nullptr;
  --size_;
  return true;
}

uint32_t HistoryCache::ShardOf(graph::NodeId v, uint32_t num_shards) {
  HW_DCHECK(num_shards > 0);
  // Fibonacci hashing: spreads consecutive node ids across shards while
  // staying bit-reproducible everywhere.
  uint64_t h = static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  return static_cast<uint32_t>(h % num_shards);
}

uint64_t HistoryCache::EntryBytes(
    const util::ArrayBlock<graph::NodeId>& block) {
  // The one refcounted payload block plus the per-entry bookkeeping (index
  // slot, ring slot and its unique_ptr); approximate, but monotone in list
  // length and stable across runs.
  return block.allocated_bytes() + sizeof(Slot) + sizeof(void*) +
         sizeof(graph::NodeId) + sizeof(uint32_t);
}

HistoryCache::Entry HistoryCache::Get(graph::NodeId v) {
  HW_PROF_SCOPE("cache/get");
  Shard& shard = shards_[ShardIndexOf(v)];
  std::shared_lock<util::RwSpinLock> lock(shard.mu);
  Slot* slot = shard.index.Find(v);
  if (slot == nullptr) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return Entry();
  }
  // The whole recency update: one relaxed store, no exclusive lock, no
  // list manipulation. The sweeping hand (under the exclusive lock) clears
  // it and grants the second chance.
  slot->ref.store(1, std::memory_order_relaxed);
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return slot->entry;
}

void HistoryCache::GetBatch(std::span<const graph::NodeId> ids, Entry* out) {
  HW_PROF_SCOPE("cache/get_batch");
  const size_t n = ids.size();
  if (n == 0) return;
  // Per-shard lookup body, run under one shared acquisition per shard.
  auto lookup = [](Shard& shard, graph::NodeId id, Entry& slot_out,
                   uint64_t& hits, uint64_t& misses) {
    Slot* slot = shard.index.Find(id);
    if (slot == nullptr) {
      ++misses;
      slot_out = Entry();
      return;
    }
    slot->ref.store(1, std::memory_order_relaxed);
    ++hits;
    slot_out = slot->entry;
  };
  if (num_shards_ == 1) {
    Shard& shard = shards_[0];
    std::shared_lock<util::RwSpinLock> lock(shard.mu);
    uint64_t hits = 0, misses = 0;
    for (size_t i = 0; i < n; ++i) lookup(shard, ids[i], out[i], hits, misses);
    if (hits != 0) shard.hits.fetch_add(hits, std::memory_order_relaxed);
    if (misses != 0) shard.misses.fetch_add(misses, std::memory_order_relaxed);
    return;
  }
  // Group positions by shard so each touched shard's lock is taken once.
  // In-place counting sort over thread-local scratch: this is the walkers'
  // hot path, so at steady state a batch allocates nothing. shard_of
  // caches the hash from the counting pass as one byte per id; after the
  // placement pass, offsets[s] has been advanced to the END of shard s's
  // run, so the run for shard s is [s == 0 ? 0 : offsets[s-1], offsets[s]).
  thread_local std::vector<uint32_t> order;
  thread_local std::vector<uint8_t> shard_of;
  thread_local std::vector<uint32_t> offsets;
  order.resize(n);
  shard_of.resize(n);
  offsets.assign(num_shards_, 0);
  if (num_shards_ <= 256) {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t s = ShardIndexOf(ids[i]);
      shard_of[i] = static_cast<uint8_t>(s);
      ++offsets[s];
    }
  } else {
    // Byte cache can't hold the shard id; recompute in the placement pass.
    for (size_t i = 0; i < n; ++i) ++offsets[ShardIndexOf(ids[i])];
  }
  uint32_t running = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const uint32_t count = offsets[s];
    offsets[s] = running;
    running += count;
  }
  if (num_shards_ <= 256) {
    for (size_t i = 0; i < n; ++i) {
      order[offsets[shard_of[i]]++] = static_cast<uint32_t>(i);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      order[offsets[ShardIndexOf(ids[i])]++] = static_cast<uint32_t>(i);
    }
  }
  thread_local std::vector<Slot*> run;
  run.resize(n);
  uint32_t begin = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const uint32_t end = offsets[s];
    if (begin == end) continue;
    Shard& shard = shards_[s];
    std::shared_lock<util::RwSpinLock> lock(shard.mu);
    uint64_t hits = 0, misses = 0;
    // Two passes under one acquisition: resolve every probe first,
    // prefetching the payload block whose header the refcount bump in the
    // commit pass will write — the probes overlap the block-line fills.
    for (uint32_t j = begin; j < end; ++j) {
      Slot* slot = shard.index.Find(ids[order[j]]);
      run[j] = slot;
      if (slot != nullptr) __builtin_prefetch(slot->entry.get(), 1, 3);
    }
    for (uint32_t j = begin; j < end; ++j) {
      Slot* slot = run[j];
      const uint32_t i = order[j];
      if (slot == nullptr) {
        ++misses;
        out[i] = Entry();
        continue;
      }
      slot->ref.store(1, std::memory_order_relaxed);
      ++hits;
      out[i] = slot->entry;
    }
    if (hits != 0) shard.hits.fetch_add(hits, std::memory_order_relaxed);
    if (misses != 0) shard.misses.fetch_add(misses, std::memory_order_relaxed);
    begin = end;
  }
}

HistoryCache::Entry HistoryCache::PutLocked(
    Shard& shard, graph::NodeId v, std::span<const graph::NodeId> neighbors,
    bool* inserted) {
  Slot* resident = shard.index.Find(v);
  if (resident != nullptr) {
    // Lost a fetch race with another walker; keep the resident entry and
    // treat the duplicate store as a touch.
    if (inserted != nullptr) *inserted = false;
    resident->ref.store(1, std::memory_order_relaxed);
    return resident->entry;
  }
  Entry entry = Entry::Copy(neighbors);
  const uint64_t entry_bytes = EntryBytes(*entry);
  if (shard_capacity_ != 0 && shard.ring.size() >= shard_capacity_) {
    // CLOCK sweep: advance the hand, clearing reference bits, until an
    // unreferenced victim turns up. Terminates within one full lap plus
    // one step: every visited slot is cleared, so revisiting the start
    // finds it unreferenced.
    HW_PROF_SCOPE("cache/sweep");
    const uint32_t ring_size = static_cast<uint32_t>(shard.ring.size());
    uint32_t pos = shard.hand;
    uint64_t steps = 0;
    while (shard.ring[pos]->ref.exchange(0, std::memory_order_relaxed) != 0) {
      pos = (pos + 1) % ring_size;
      ++steps;
    }
    shard.sweep.Record(steps);
    Slot& victim = *shard.ring[pos];
    shard.index.Erase(victim.key);
    shard.bytes -= victim.bytes;
    ++shard.evictions;
    // New entries start unreferenced: untouched-since-insert entries are
    // reclaimable after one lap, same as an un-hit LRU entry.
    victim.key = v;
    victim.entry = std::move(entry);
    victim.bytes = entry_bytes;
    shard.index.Insert(v, &victim);
    shard.hand = (pos + 1) % ring_size;
    shard.bytes += entry_bytes;
    ++shard.insertions;
    if (inserted != nullptr) *inserted = true;
    return victim.entry;
  }
  auto slot = std::make_unique<Slot>();
  slot->key = v;
  slot->entry = std::move(entry);
  slot->bytes = entry_bytes;
  Slot& stored = *slot;
  shard.index.Insert(v, &stored);
  shard.ring.push_back(std::move(slot));
  shard.bytes += entry_bytes;
  ++shard.insertions;
  if (inserted != nullptr) *inserted = true;
  return stored.entry;
}

HistoryCache::Entry HistoryCache::Put(graph::NodeId v,
                                      std::span<const graph::NodeId> neighbors,
                                      bool* inserted) {
  HW_PROF_SCOPE("cache/put");
  Shard& shard = shards_[ShardIndexOf(v)];
  std::unique_lock<util::RwSpinLock> lock(shard.mu);
  return PutLocked(shard, v, neighbors, inserted);
}

std::vector<HistoryCache::ExportedEntry> HistoryCache::ExportShard(
    uint32_t shard_index) const {
  HW_CHECK(shard_index < num_shards_);
  const Shard& shard = shards_[shard_index];
  std::vector<ExportedEntry> out;
  // Shared suffices: the export mutates nothing, and shared mode excludes
  // writers, which is all consistency needs.
  std::shared_lock<util::RwSpinLock> lock(shard.mu);
  const size_t ring_size = shard.ring.size();
  out.reserve(ring_size);
  // Walk the ring in clock order starting at the hand, so the export reads
  // next-eviction-candidate first (the Put() replay order that reconstructs
  // the ring with the hand normalized to slot 0).
  for (size_t i = 0; i < ring_size; ++i) {
    const Slot& slot = *shard.ring[(shard.hand + i) % ring_size];
    out.push_back(ExportedEntry{slot.key, slot.entry});
  }
  return out;
}

uint64_t HistoryCache::PutBatch(std::span<const ImportEntry> entries,
                                Entry* out_entries, bool* inserted) {
  // Group by shard first so each touched shard's exclusive lock is taken
  // once, then insert each group in its original order (preserving clock
  // order reconstruction for per-shard inputs).
  std::vector<std::vector<size_t>> by_shard(num_shards_);
  for (size_t i = 0; i < entries.size(); ++i) {
    by_shard[ShardIndexOf(entries[i].node)].push_back(i);
  }
  uint64_t new_entries = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::unique_lock<util::RwSpinLock> lock(shard.mu);
    for (size_t i : by_shard[s]) {
      bool was_inserted = false;
      Entry entry = PutLocked(shard, entries[i].node, entries[i].neighbors,
                              &was_inserted);
      if (was_inserted) ++new_entries;
      if (out_entries != nullptr) out_entries[i] = std::move(entry);
      if (inserted != nullptr) inserted[i] = was_inserted;
    }
  }
  return new_entries;
}

bool HistoryCache::Contains(graph::NodeId v) const {
  const Shard& shard = shards_[ShardIndexOf(v)];
  std::shared_lock<util::RwSpinLock> lock(shard.mu);
  // Deliberately no counter bumps and no reference-bit mark: Contains must
  // not make an entry look recently used or skew hit-rate stats.
  return shard.index.Find(v) != nullptr;
}

void HistoryCache::Clear() {
  for (uint32_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::unique_lock<util::RwSpinLock> lock(shard.mu);
    shard.index.Clear();
    shard.ring.clear();
    shard.hand = 0;
    shard.bytes = 0;
  }
}

HistoryCacheShardHeat HistoryCache::shard_heat(uint32_t shard_index) const {
  HW_CHECK(shard_index < num_shards_);
  const Shard& shard = shards_[shard_index];
  HistoryCacheShardHeat heat;
  std::shared_lock<util::RwSpinLock> lock(shard.mu);
  heat.hits = shard.hits.load(std::memory_order_relaxed);
  heat.misses = shard.misses.load(std::memory_order_relaxed);
  heat.insertions = shard.insertions;
  heat.evictions = shard.evictions;
  heat.entries = shard.index.size();
  heat.bytes = shard.bytes;
  heat.sweep = shard.sweep;
  const util::RwSpinLockCounters& lc = shard.lock_counters;
  heat.lock_shared_acquires =
      lc.shared_acquires.load(std::memory_order_relaxed);
  heat.lock_shared_contended =
      lc.shared_contended.load(std::memory_order_relaxed);
  heat.lock_exclusive_acquires =
      lc.exclusive_acquires.load(std::memory_order_relaxed);
  heat.lock_exclusive_contended =
      lc.exclusive_contended.load(std::memory_order_relaxed);
  return heat;
}

HistoryCacheStats HistoryCache::stats() const {
  HistoryCacheStats total;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::shared_lock<util::RwSpinLock> lock(shard.mu);
    total.hits += shard.hits.load(std::memory_order_relaxed);
    total.misses += shard.misses.load(std::memory_order_relaxed);
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
    total.entries += shard.index.size();
    total.bytes += shard.bytes;
  }
  return total;
}

}  // namespace histwalk::access
