#ifndef HISTWALK_ACCESS_RATE_LIMITER_H_
#define HISTWALK_ACCESS_RATE_LIMITER_H_

#include <cstdint>

// Simulated API rate limits.
//
// Real OSNs throttle neighborhood queries hard ("15 calls every 15 minutes"
// on Twitter, "25,000 calls per day" on Yelp — section 2.1). The simulator
// does not sleep; it advances a virtual clock so experiments can report the
// crawl wall-time a given query budget would cost against a real service.

namespace histwalk::access {

struct RateLimitPolicy {
  uint64_t calls_per_window = 15;
  uint64_t window_seconds = 900;  // Twitter's 15 minutes

  static RateLimitPolicy Twitter() { return {15, 900}; }
  static RateLimitPolicy Yelp() { return {25'000, 86'400}; }
};

// Token-bucket over a virtual clock: each window grants calls_per_window
// queries; when the bucket is empty the virtual clock jumps to the next
// window boundary.
class RateLimiter {
 public:
  explicit RateLimiter(RateLimitPolicy policy);

  // Accounts one charged query and returns the virtual timestamp (seconds
  // since crawl start) at which the query could actually be issued.
  uint64_t RecordQuery();

  uint64_t queries_issued() const { return queries_issued_; }
  // Virtual crawl duration so far, in seconds.
  uint64_t elapsed_seconds() const { return now_; }

  // Crawl seconds a hypothetical crawl of `num_queries` would need under
  // this policy (starting from a fresh bucket).
  static uint64_t EstimateSeconds(const RateLimitPolicy& policy,
                                  uint64_t num_queries);

 private:
  RateLimitPolicy policy_;
  uint64_t queries_issued_ = 0;
  uint64_t window_used_ = 0;   // queries consumed in the current window
  uint64_t window_start_ = 0;  // virtual start of the current window
  uint64_t now_ = 0;           // virtual clock
};

}  // namespace histwalk::access

#endif  // HISTWALK_ACCESS_RATE_LIMITER_H_
