#ifndef HISTWALK_ACCESS_SHARED_ACCESS_H_
#define HISTWALK_ACCESS_SHARED_ACCESS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "access/backend.h"
#include "access/history_cache.h"
#include "access/node_access.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/trace.h"

// Shared history for concurrent walker ensembles.
//
// The paper analyses a single walk reusing its own history; running N
// walkers against the same service generalises the idea: any response one
// walker fetched is history for all of them. SharedAccessGroup owns the
// communal state — one AccessBackend, one bounded HistoryCache, one global
// fetch budget — and mints per-walker SharedAccess views. Each view is a
// full NodeAccess, so every existing walker runs unmodified on shared
// history. A group can instead run over an EXTERNAL cache owned by a
// longer-lived service (the shared-cache constructor below): that is how
// service::SamplingService shares one history across many tenant groups
// while each group keeps its own budget and billing.
//
// Accounting is split across the two levels so both stay exact:
//
//  * per view (QueryStats): unique_queries counts the distinct nodes THIS
//    walker asked for — its standalone query cost, independent of what the
//    other walkers or the eviction policy did, hence deterministic given
//    the walk itself. cache_hits counts the walker's own repeats.
//  * per group: charged_queries() counts actual backend fetches — what the
//    service would bill the whole crawl. The gap between the views' summed
//    unique_queries and the group's charged_queries is exactly the ensemble
//    saving from shared history; with a bounded cache, evicted-then-refetched
//    nodes push charges back up, making the memory/queries trade measurable.
//
// A group-level query_budget is a shared quota; refusals surface as the
// typed kBudgetExhausted status (distinct from a per-access
// kResourceExhausted budget), and WHICH view gets refused
// when it runs out depends on thread interleaving — walks under a binding
// group budget are not reproducible across schedules (see
// estimate/ensemble_runner.h for the deterministic per-walker alternative).
//
// Concurrency notes: views are NOT thread-safe individually (one view per
// walker per thread); the group and cache are. Two walkers missing on the
// same node at the same instant may both fetch it — the cache keeps one
// copy, the duplicate charge is the usual cost of not holding a lock across
// the backend call. Attaching an AsyncFetcher (net::RequestPipeline)
// removes even that: concurrent misses on one node collapse into a single
// deduplicated wire request (singleflight).

namespace histwalk::access {

class AsyncFetcher;
class HistoryJournal;
class HistoryTier;
class SharedAccess;

struct SharedAccessOptions {
  // Global backend-fetch budget across all views; 0 means unlimited.
  uint64_t query_budget = 0;
  HistoryCacheOptions cache;
  // Metrics registry the group's counters land in; null = the process
  // Global() registry. Must outlive the group.
  obs::Registry* registry = nullptr;
};

// Cached instrument pointers for the group's miss-path accounting —
// resolved once at group construction so the hot path never touches the
// registry's name map. Every view-level cache miss is attributed to
// EXACTLY ONE of wire_fetches / store_hits / singleflight_joins /
// budget_refusals / fetch_errors, so
//     cache_misses == wire_fetches + store_hits + singleflight_joins
//                   + budget_refusals + fetch_errors
// holds exactly (pinned by obs_identity_test).
struct GroupObsCounters {
  obs::Counter* cache_hits = nullptr;
  obs::Counter* cache_misses = nullptr;
  obs::Counter* store_hits = nullptr;
  obs::Counter* singleflight_joins = nullptr;
  obs::Counter* wire_fetches = nullptr;
  obs::Counter* budget_refusals = nullptr;
  obs::Counter* fetch_errors = nullptr;
  obs::Histogram* pipeline_wait = nullptr;
};

class SharedAccessGroup {
 public:
  // `backend` must outlive the group; the group must outlive its views.
  // The group owns its HistoryCache (built from options.cache).
  SharedAccessGroup(const AccessBackend* backend,
                    SharedAccessOptions options = {});

  // The cross-tenant seam: the group runs over `shared_cache` instead of
  // owning one (options.cache is ignored). Several groups — one per tenant
  // of a service::SamplingService — can share a single cache this way:
  // each keeps its OWN fetch budget and charge counter (per-tenant
  // billing), while any response one tenant fetched is history for all of
  // them. `shared_cache` must outlive the group (taken by reference, not
  // pointer, so a braced `{}` can never silently select this overload).
  // Note that ResetAll() clears the SHARED cache — never call it while
  // other groups are using the cache.
  SharedAccessGroup(const AccessBackend* backend, HistoryCache& shared_cache,
                    SharedAccessOptions options = {});

  SharedAccessGroup(const SharedAccessGroup&) = delete;
  SharedAccessGroup& operator=(const SharedAccessGroup&) = delete;

  // Mints a per-walker view. Thread-safe, though views are typically
  // created up front and handed one per worker thread.
  std::unique_ptr<SharedAccess> MakeView();

  const AccessBackend* backend() const { return backend_; }
  HistoryCache& cache() { return *cache_; }
  const HistoryCache& cache() const { return *cache_; }
  // True when the cache is externally owned (the cross-tenant seam above).
  bool uses_shared_cache() const { return owned_cache_ == nullptr; }

  // Backend fetches issued so far (the service-billed crawl cost).
  uint64_t charged_queries() const {
    return charged_.load(std::memory_order_relaxed);
  }
  // Remaining fetch budget; UINT64_MAX when unlimited, clamped at 0.
  uint64_t remaining_budget() const;

  // Clears the shared cache and the charge counter. Views keep their own
  // accounting; reset each view separately via ResetAccounting().
  void ResetAll();

  // Attaches (or detaches, with nullptr) the async miss-resolution client:
  // while set, views route cache misses through fetcher->FetchShared()
  // instead of fetching on their own thread. The fetcher must outlive the
  // attachment. Not synchronized against in-flight Neighbors() calls —
  // attach/detach only while no walker is running.
  void set_async_fetcher(AsyncFetcher* fetcher) { fetcher_ = fetcher; }
  AsyncFetcher* async_fetcher() const { return fetcher_; }

  // Attaches (or detaches, with nullptr) a durable-history journal
  // (store::HistoryStore): every backend response newly inserted into the
  // shared cache is announced to it, from whichever thread fetched it.
  // The journal must outlive the attachment. Like set_async_fetcher, not
  // synchronized against in-flight Neighbors() calls — attach/detach only
  // while no walker is running.
  void set_history_journal(HistoryJournal* journal) { journal_ = journal; }
  HistoryJournal* history_journal() const { return journal_; }

  // Attaches (or detaches, with nullptr) a second history tier probed on
  // the miss path BEFORE the wire: memory cache -> tier -> backend. A tier
  // hit is promoted into the cache journal-free and budget-free (see
  // access/history_tier.h). Same lifetime/synchronization caveats as
  // set_async_fetcher.
  void set_history_tier(HistoryTier* tier) { tier_ = tier; }
  HistoryTier* history_tier() const { return tier_; }

  // Attaches (or detaches, with nullptr) a flight recorder that captures
  // every miss-path resolution (obs/flight_recorder.h). Same caveats as
  // set_async_fetcher.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }
  obs::FlightRecorder* flight_recorder() const { return flight_; }

  // The group's cached metrics instruments (see GroupObsCounters); always
  // non-null pointers once constructed. net::RequestPipeline pushes the
  // singleflight/wait instruments through this.
  const GroupObsCounters& obs() const { return obs_; }

  // Budget hooks for fetch-executing clients (views' synchronous miss path
  // and net::RequestPipeline): claim one unit of fetch budget before a
  // backend fetch — false means the group quota refused it — and refund it
  // if the fetch itself fails.
  bool TryCharge();
  void RefundCharge() { charged_.fetch_sub(1, std::memory_order_relaxed); }

  // The single insert funnel for fetched responses: stores `neighbors`
  // under `v` in the shared cache and, when this call created a new entry,
  // notifies the attached journal. Both miss paths (the views' synchronous
  // fetch and the request pipeline's batch completion) go through here so
  // an attached store sees every response exactly once. Thread-safe.
  HistoryCache::Entry StoreFetched(graph::NodeId v,
                                   std::span<const graph::NodeId> neighbors);

  // Batch analogue of StoreFetched: the whole batch lands through one
  // HistoryCache::PutBatch — a single exclusive-lock acquisition per
  // touched shard, and exactly one for the pipeline's per-shard batches —
  // instead of one Put per response, and the attached journal still sees
  // each genuinely new insertion exactly once, in batch order. Returns the
  // pinned handles aligned with `entries`. Thread-safe.
  std::vector<HistoryCache::Entry> StoreFetchedBatch(
      std::span<const HistoryCache::ImportEntry> entries);

  // Promotion funnel for history-tier hits: stores `neighbors` under `v`
  // in the cache WITHOUT journaling (the record is already durable) and
  // without touching budget or wire counters. Thread-safe.
  HistoryCache::Entry StoreWarm(graph::NodeId v,
                                std::span<const graph::NodeId> neighbors);

 private:
  friend class SharedAccess;

  const AccessBackend* backend_;
  SharedAccessOptions options_;
  std::unique_ptr<HistoryCache> owned_cache_;  // null when cache is shared
  HistoryCache* cache_;  // owned_cache_.get() or the external shared cache
  std::atomic<uint64_t> charged_{0};
  std::atomic<uint32_t> next_view_id_{0};
  AsyncFetcher* fetcher_ = nullptr;
  HistoryJournal* journal_ = nullptr;
  HistoryTier* tier_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  GroupObsCounters obs_;
};

class SharedAccess final : public NodeAccess {
 public:
  // Prefer SharedAccessGroup::MakeView(). `group` must outlive this view.
  explicit SharedAccess(SharedAccessGroup* group);

  util::Result<std::span<const graph::NodeId>> Neighbors(
      graph::NodeId v) override;
  util::Result<double> Attribute(graph::NodeId v,
                                 attr::AttrId attr) const override;
  util::Result<uint32_t> SummaryDegree(graph::NodeId v) const override;

  uint64_t num_nodes() const override { return group_->backend()->num_nodes(); }
  const QueryStats& stats() const override { return stats_; }
  uint64_t remaining_budget() const override {
    return group_->remaining_budget();
  }
  // Clears this view's accounting only; the shared cache and group budget
  // are untouched (use SharedAccessGroup::ResetAll for those).
  void ResetAccounting() override;

  // Shared-cache footprint plus this view's private membership bits. Note
  // that summing HistoryBytes() across views counts the shared cache once
  // per view; ensemble-level reporting adds private_history_bytes() per
  // view to one cache footprint instead.
  uint64_t HistoryBytes() const override {
    return group_->cache().MemoryBytes() + private_history_bytes();
  }
  // History state owned by this view alone (its queried_ membership bits).
  uint64_t private_history_bytes() const { return (queried_.size() + 7) / 8; }

  // Backend fetches this view triggered (cache misses it paid for). Unlike
  // unique_queries this depends on thread interleaving under concurrency.
  uint64_t charged_fetches() const { return charged_fetches_; }

  SharedAccessGroup* group() const { return group_; }

  // Stable id of this view within its group (creation order) — the
  // `actor` field of flight-recorder events.
  uint32_t view_id() const { return view_id_; }

  // Points this view's probe instants at `tracer`'s `track` (typically
  // the per-walker track); null detaches. The view is single-threaded, so
  // this is safe between (not during) Neighbors() calls.
  void set_trace(obs::Tracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

 private:
  void AccountServed(graph::NodeId v);
  void RecordMissOutcome(graph::NodeId v, obs::FlightEventKind kind,
                         uint64_t start_us);

  SharedAccessGroup* group_;
  obs::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
  uint32_t view_id_ = 0;
  QueryStats stats_;
  std::vector<bool> queried_;  // nodes THIS view has asked for
  uint64_t charged_fetches_ = 0;
  // Handles to recently returned responses: keeps their spans valid even if
  // the shared cache evicts the entries mid-step (one neighbor list is live
  // per walker step; two gives margin).
  HistoryCache::Entry retained_[2];
  size_t retain_slot_ = 0;
};

}  // namespace histwalk::access

#endif  // HISTWALK_ACCESS_SHARED_ACCESS_H_
