#ifndef HISTWALK_STORE_SNAPSHOT_H_
#define HISTWALK_STORE_SNAPSHOT_H_

#include <string>

#include "access/history_cache.h"
#include "util/status.h"

// Versioned, checksummed binary image of a HistoryCache — the durable half
// of the paper's "history is an asset" thesis: neighbor lists crawled today
// warm-start every crawl tomorrow.
//
// File layout (all integers little-endian, see store/format.h):
//
//   header   magic 'HWSS' | version u32 | num_shards u32 | reserved u32
//   dir      per shard: offset u64 | length u64 | crc32 u32 | entries u32
//   hdr_crc  u32 over header+dir
//   sections per shard, back to back: per entry
//              node u32 | degree u32 | degree * neighbor u32
//
// Per-shard sections are the parallelism seam: save serializes shards
// concurrently (util::ParallelFor) and load verifies + inserts them
// concurrently. Within a section, entries come out in clock order starting
// at the eviction hand (HistoryCache::ExportShard) — next eviction
// candidate first — so loading into a cache with the same shard count
// reproduces residency and the eviction scan order, with the hand
// normalized to slot 0 (clock reference bits are not persisted; they are
// at most a one-lap grace).
//
// Crash safety: WriteSnapshot writes to `path`.tmp and renames, so `path`
// always holds either the previous complete snapshot or the new one, never
// a torn write. Load validates the header CRC and every section CRC and
// returns kDataLoss on any mismatch or truncation; kFailedPrecondition on a
// version from a different format generation; kNotFound when the file does
// not exist (a clean cold start, not an error).

namespace histwalk::store {

// A pinned, per-shard export of a cache's contents (ExportShard output per
// shard). Holding the image keeps every neighbor list alive independent of
// the cache it came from — the seam that lets background checkpointing
// serialize and write a snapshot AFTER the insert path has moved on (and
// even after the cache itself is gone).
using ExportedCacheImage =
    std::vector<std::vector<access::HistoryCache::ExportedEntry>>;

// Pins the cache's current contents, shard by shard (each shard exported
// under its own lock — the per-shard-consistent contract of ExportShard).
// Cost is O(entries) handle copies, no serialization and no IO.
ExportedCacheImage ExportCacheImage(const access::HistoryCache& cache);

struct SnapshotMeta {
  uint32_t version = 0;
  uint32_t num_shards = 0;   // cache shard geometry at save time
  uint64_t entries = 0;      // neighbor lists in the snapshot
  uint64_t file_bytes = 0;   // total file size
};

// Serializes the cache's current contents. Each shard is exported under its
// own lock, so saving while walkers insert yields a per-shard-consistent
// image (the same contract as HistoryCache::stats()). `num_threads` feeds
// ParallelFor (0 = hardware concurrency).
util::Result<SnapshotMeta> WriteSnapshot(const access::HistoryCache& cache,
                                         const std::string& path,
                                         unsigned num_threads = 0);

// Serializes an already-pinned image (same format, same tmp+rename
// discipline). What HistoryStore's background checkpoint thread calls: the
// expensive serialization/CRC/IO runs here, decoupled from the cache.
util::Result<SnapshotMeta> WriteSnapshot(const ExportedCacheImage& image,
                                         const std::string& path,
                                         unsigned num_threads = 0);

// Validates and loads `path` into `cache` (BulkPut semantics: idempotent,
// evicting if the cache is smaller than the snapshot, counted as
// insertions). The cache need not share the snapshot's shard geometry;
// exact eviction-order reproduction additionally requires equal num_shards.
util::Result<SnapshotMeta> LoadSnapshot(const std::string& path,
                                        access::HistoryCache& cache,
                                        unsigned num_threads = 0);

// Header/directory validation only — cheap existence + integrity probe.
util::Result<SnapshotMeta> InspectSnapshot(const std::string& path);

}  // namespace histwalk::store

#endif  // HISTWALK_STORE_SNAPSHOT_H_
