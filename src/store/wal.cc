#include "store/wal.h"

#include <filesystem>
#include <vector>

#include "store/format.h"
#include "util/crc32.h"

namespace histwalk::store {
namespace {

constexpr size_t kWalHeaderBytes = 8;        // magic + version
constexpr size_t kRecordHeaderBytes = 8;     // length + crc

std::string ExpectedWalHeader() {
  std::string header;
  AppendU32(header, kWalMagic);
  AppendU32(header, kFormatVersion);
  return header;
}

util::Status CheckWalHeader(std::string_view data, const std::string& path) {
  ByteReader reader(data);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!reader.ReadU32(&magic) || magic != kWalMagic) {
    return util::Status::DataLoss("bad wal magic in " + path);
  }
  if (!reader.ReadU32(&version)) {
    return util::Status::DataLoss("truncated wal header in " + path);
  }
  if (version != kFormatVersion) {
    return util::Status::FailedPrecondition(
        "unsupported wal version " + std::to_string(version) + " in " + path);
  }
  return util::Status::Ok();
}

// Walks records, optionally applying them to `cache`. The scan stops at the
// first incomplete or CRC-failing record; that tail is tolerated iff it
// extends to end-of-file (a torn write), and is interior corruption
// otherwise.
util::Result<WalScan> ScanImpl(std::string_view data, const std::string& path,
                               access::HistoryCache* cache,
                               uint64_t* inserted_out) {
  if (data.size() < kWalHeaderBytes) {
    // A crash between file creation and the header flush leaves a strict
    // prefix of the 8 header bytes (usually zero of them). That is a torn
    // header — repairable like any torn tail — while anything else this
    // short is a foreign file we must not claim.
    if (data == std::string_view(ExpectedWalHeader()).substr(0, data.size())) {
      WalScan scan;
      scan.torn_tail = true;
      scan.dropped_bytes = data.size();
      return scan;
    }
    return util::Status::DataLoss("bad wal magic in " + path);
  }
  HW_RETURN_IF_ERROR(CheckWalHeader(data, path));
  WalScan scan;
  scan.valid_bytes = kWalHeaderBytes;
  ByteReader reader(data.substr(kWalHeaderBytes));
  while (reader.remaining() > 0) {
    uint32_t length = 0;
    uint32_t crc = 0;
    std::string_view payload;
    const bool has_header = reader.remaining() >= kRecordHeaderBytes &&
                            reader.ReadU32(&length) && reader.ReadU32(&crc);
    // A declared length past the record bound cannot come from a torn
    // write (the length field is either absent or correct in one); it is a
    // corrupted length field, and trusting it would misread everything
    // after this record as "past EOF" and silently drop it.
    if (has_header && length > kMaxWalRecordPayload) {
      return util::Status::DataLoss("wal record length corrupt in " + path);
    }
    const bool complete = has_header && reader.ReadBytes(length, &payload);
    if (!complete || util::Crc32(payload) != crc) {
      // The record is unusable. If it runs to EOF it is a torn append;
      // anything after it means the middle of the log rotted.
      scan.torn_tail = true;
      scan.dropped_bytes = data.size() - scan.valid_bytes;
      const bool reaches_eof =
          !complete || kWalHeaderBytes + reader.position() == data.size();
      if (!reaches_eof) {
        return util::Status::DataLoss("wal record crc mismatch mid-log in " +
                                      path);
      }
      break;
    }
    // Decode the payload; a malformed (but CRC-clean) payload is data loss
    // outright — CRCs do not lie about torn writes.
    ByteReader record(payload);
    uint32_t node = 0;
    uint32_t degree = 0;
    if (!record.ReadU32(&node) || !record.ReadU32(&degree) ||
        record.remaining() != static_cast<size_t>(degree) * 4) {
      return util::Status::DataLoss("malformed wal record in " + path);
    }
    if (cache != nullptr) {
      std::vector<graph::NodeId> neighbors(degree);
      for (uint32_t d = 0; d < degree; ++d) {
        uint32_t neighbor = 0;
        record.ReadU32(&neighbor);
        neighbors[d] = neighbor;
      }
      bool inserted = false;
      cache->Put(node, neighbors, &inserted);
      if (inserted && inserted_out != nullptr) ++(*inserted_out);
    }
    ++scan.valid_records;
    scan.valid_bytes = kWalHeaderBytes + reader.position();
  }
  return scan;
}

}  // namespace

util::Result<WalScan> ScanWal(const std::string& path) {
  HW_ASSIGN_OR_RETURN(std::string data, ReadFileBytes(path, "wal"));
  return ScanImpl(data, path, nullptr, nullptr);
}

util::Result<WalReplayReport> ReplayWal(const std::string& path,
                                        access::HistoryCache& cache) {
  HW_ASSIGN_OR_RETURN(std::string data, ReadFileBytes(path, "wal"));
  // Validate fully before applying anything: replay is all-or-nothing with
  // respect to interior corruption.
  HW_ASSIGN_OR_RETURN(WalScan dry, ScanImpl(data, path, nullptr, nullptr));
  uint64_t inserted = 0;
  HW_ASSIGN_OR_RETURN(WalScan scan, ScanImpl(data, path, &cache, &inserted));
  WalReplayReport report;
  report.records_applied = scan.valid_records;
  report.records_inserted = inserted;
  report.recovered_torn_tail = dry.torn_tail;
  report.dropped_bytes = dry.dropped_bytes;
  return report;
}

WalWriter::WalWriter(std::string path, WalWriterOptions options)
    : path_(std::move(path)), options_(options) {}

util::Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, WalWriterOptions options) {
  std::unique_ptr<WalWriter> writer(new WalWriter(path, options));
  auto existing = ScanWal(path);
  if (existing.ok()) {
    // Repair a torn tail before appending: never write after garbage.
    if (existing->torn_tail) {
      std::error_code ec;
      std::filesystem::resize_file(path, existing->valid_bytes, ec);
      if (ec) {
        return util::Status::Internal("cannot truncate torn wal tail in " +
                                      path + ": " + ec.message());
      }
      writer->repaired_torn_tail_ = true;
      writer->repaired_dropped_bytes_ = existing->dropped_bytes;
    }
    writer->file_bytes_ = existing->valid_bytes;
    writer->out_.open(path, std::ios::binary | std::ios::app);
    if (!writer->out_) {
      return util::Status::Internal("cannot open " + path + " for append");
    }
    if (writer->file_bytes_ < kWalHeaderBytes) {
      // The repair ate a torn header (crash before the first flush); the
      // file is empty again, so lay down a fresh header.
      std::string header = ExpectedWalHeader();
      writer->out_.write(header.data(),
                         static_cast<std::streamsize>(header.size()));
      writer->out_.flush();
      if (!writer->out_.good()) {
        return util::Status::Internal("cannot rewrite wal header in " + path);
      }
      writer->file_bytes_ = header.size();
    }
  } else if (existing.status().code() == util::StatusCode::kNotFound) {
    writer->out_.open(path, std::ios::binary | std::ios::trunc);
    if (!writer->out_) {
      return util::Status::Internal("cannot create " + path);
    }
    std::string header;
    AppendU32(header, kWalMagic);
    AppendU32(header, kFormatVersion);
    writer->out_.write(header.data(),
                       static_cast<std::streamsize>(header.size()));
    writer->out_.flush();
    if (!writer->out_.good()) {
      return util::Status::Internal("cannot write wal header to " + path);
    }
    writer->file_bytes_ = header.size();
  } else {
    return existing.status();  // kDataLoss / kFailedPrecondition pass through
  }
  return writer;
}

WalWriter::~WalWriter() { Flush(); }

util::Status WalWriter::Append(graph::NodeId v,
                               std::span<const graph::NodeId> neighbors) {
  scratch_.clear();
  AppendU32(scratch_, v);
  AppendU32(scratch_, static_cast<uint32_t>(neighbors.size()));
  for (graph::NodeId neighbor : neighbors) AppendU32(scratch_, neighbor);
  std::string record;
  record.reserve(kRecordHeaderBytes + scratch_.size());
  AppendU32(record, static_cast<uint32_t>(scratch_.size()));
  AppendU32(record, util::Crc32(scratch_));
  record += scratch_;
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  if (options_.flush_each_record) out_.flush();
  if (!out_.good()) {
    return util::Status::Internal("wal append failed for " + path_);
  }
  file_bytes_ += record.size();
  ++records_appended_;
  return util::Status::Ok();
}

util::Status WalWriter::Flush() {
  if (!out_.is_open()) return util::Status::Ok();
  out_.flush();
  if (!out_.good()) {
    return util::Status::Internal("wal flush failed for " + path_);
  }
  return util::Status::Ok();
}

util::Status WalWriter::Reset() {
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    return util::Status::Internal("cannot reset wal " + path_);
  }
  std::string header;
  AppendU32(header, kWalMagic);
  AppendU32(header, kFormatVersion);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.flush();
  if (!out_.good()) {
    return util::Status::Internal("cannot rewrite wal header in " + path_);
  }
  file_bytes_ = header.size();
  return util::Status::Ok();
}

}  // namespace histwalk::store
