#include "store/snapshot.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "store/format.h"
#include "util/crc32.h"
#include "util/parallel.h"

namespace histwalk::store {
namespace {

// header: magic, version, num_shards, reserved.
constexpr size_t kHeaderBytes = 4 * 4;
// per-shard directory row: offset u64, length u64, crc u32, entries u32.
constexpr size_t kDirRowBytes = 8 + 8 + 4 + 4;

struct DirRow {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
  uint32_t entries = 0;
};

// Parses and CRC-validates the header + directory. On success, `rows` holds
// one entry per shard section and `meta` the header fields.
util::Status ParseHeader(std::string_view data, const std::string& path,
                         SnapshotMeta* meta, std::vector<DirRow>* rows) {
  ByteReader reader(data);
  uint32_t magic = 0;
  uint32_t reserved = 0;
  if (!reader.ReadU32(&magic) || magic != kSnapshotMagic) {
    return util::Status::DataLoss("bad snapshot magic in " + path);
  }
  if (!reader.ReadU32(&meta->version)) {
    return util::Status::DataLoss("truncated snapshot header in " + path);
  }
  if (meta->version != kFormatVersion) {
    return util::Status::FailedPrecondition(
        "unsupported snapshot version " + std::to_string(meta->version) +
        " in " + path);
  }
  if (!reader.ReadU32(&meta->num_shards) || !reader.ReadU32(&reserved)) {
    return util::Status::DataLoss("truncated snapshot header in " + path);
  }
  if (meta->num_shards == 0) {
    return util::Status::DataLoss("snapshot declares zero shards: " + path);
  }
  rows->resize(meta->num_shards);
  for (DirRow& row : *rows) {
    if (!reader.ReadU64(&row.offset) || !reader.ReadU64(&row.length) ||
        !reader.ReadU32(&row.crc) || !reader.ReadU32(&row.entries)) {
      return util::Status::DataLoss("truncated snapshot directory in " + path);
    }
    meta->entries += row.entries;
  }
  const size_t covered = reader.position();
  uint32_t header_crc = 0;
  if (!reader.ReadU32(&header_crc)) {
    return util::Status::DataLoss("missing snapshot header crc in " + path);
  }
  if (header_crc != util::Crc32(data.substr(0, covered))) {
    return util::Status::DataLoss("snapshot header crc mismatch in " + path);
  }
  for (const DirRow& row : *rows) {
    if (row.offset > data.size() || row.length > data.size() - row.offset) {
      return util::Status::DataLoss("snapshot section out of bounds in " +
                                    path);
    }
  }
  meta->file_bytes = data.size();
  return util::Status::Ok();
}

}  // namespace

ExportedCacheImage ExportCacheImage(const access::HistoryCache& cache) {
  ExportedCacheImage image(cache.num_shards());
  for (uint32_t s = 0; s < cache.num_shards(); ++s) {
    image[s] = cache.ExportShard(s);
  }
  return image;
}

util::Result<SnapshotMeta> WriteSnapshot(const access::HistoryCache& cache,
                                         const std::string& path,
                                         unsigned num_threads) {
  return WriteSnapshot(ExportCacheImage(cache), path, num_threads);
}

util::Result<SnapshotMeta> WriteSnapshot(const ExportedCacheImage& image,
                                         const std::string& path,
                                         unsigned num_threads) {
  const uint32_t num_shards = static_cast<uint32_t>(image.size());
  if (num_shards == 0) {
    return util::Status::InvalidArgument("snapshot image has zero shards");
  }
  std::vector<std::string> sections(num_shards);
  std::vector<DirRow> rows(num_shards);

  // Serialize every shard concurrently from the pinned image.
  util::ParallelFor(
      num_shards,
      [&](size_t s) {
        std::string& section = sections[s];
        const std::vector<access::HistoryCache::ExportedEntry>& entries =
            image[s];
        for (const auto& entry : entries) {
          AppendU32(section, entry.node);
          AppendU32(section, static_cast<uint32_t>(entry.neighbors->size()));
          for (graph::NodeId neighbor : *entry.neighbors) {
            AppendU32(section, neighbor);
          }
        }
        rows[s].length = section.size();
        rows[s].crc = util::Crc32(section);
        rows[s].entries = static_cast<uint32_t>(entries.size());
      },
      num_threads);

  uint64_t offset = kHeaderBytes + num_shards * kDirRowBytes + 4 /*hdr crc*/;
  SnapshotMeta meta;
  meta.version = kFormatVersion;
  meta.num_shards = num_shards;
  for (DirRow& row : rows) {
    row.offset = offset;
    offset += row.length;
    meta.entries += row.entries;
  }
  meta.file_bytes = offset;

  std::string header;
  header.reserve(kHeaderBytes + num_shards * kDirRowBytes + 4);
  AppendU32(header, kSnapshotMagic);
  AppendU32(header, kFormatVersion);
  AppendU32(header, num_shards);
  AppendU32(header, 0);  // reserved
  for (const DirRow& row : rows) {
    AppendU64(header, row.offset);
    AppendU64(header, row.length);
    AppendU32(header, row.crc);
    AppendU32(header, row.entries);
  }
  AppendU32(header, util::Crc32(header));

  // Write to a sibling temp file and rename so `path` is always a complete
  // snapshot (old or new), never a torn one.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::Status::Internal("cannot open " + tmp_path +
                                    " for writing");
    }
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    for (const std::string& section : sections) {
      out.write(section.data(), static_cast<std::streamsize>(section.size()));
    }
    out.flush();
    if (!out.good()) {
      return util::Status::Internal("write failed for " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return util::Status::Internal("rename failed for " + path);
  }
  return meta;
}

util::Result<SnapshotMeta> LoadSnapshot(const std::string& path,
                                        access::HistoryCache& cache,
                                        unsigned num_threads) {
  HW_ASSIGN_OR_RETURN(std::string data, ReadFileBytes(path, "snapshot"));
  SnapshotMeta meta;
  std::vector<DirRow> rows;
  HW_RETURN_IF_ERROR(ParseHeader(data, path, &meta, &rows));

  // Verify and insert sections concurrently. Different sections touch
  // different key ranges; BulkPut is thread-safe either way.
  std::vector<util::Status> statuses(rows.size());
  util::ParallelFor(
      rows.size(),
      [&](size_t s) {
        const DirRow& row = rows[s];
        std::string_view section(data.data() + row.offset, row.length);
        if (util::Crc32(section) != row.crc) {
          statuses[s] = util::Status::DataLoss(
              "snapshot section " + std::to_string(s) + " crc mismatch in " +
              path);
          return;
        }
        // Decode into owned neighbor storage, then bulk-insert the shard's
        // entries in their on-disk (clock reconstruction) order.
        std::vector<std::vector<graph::NodeId>> neighbor_lists;
        std::vector<access::HistoryCache::ImportEntry> imports;
        neighbor_lists.reserve(row.entries);
        imports.reserve(row.entries);
        ByteReader reader(section);
        for (uint32_t i = 0; i < row.entries; ++i) {
          uint32_t node = 0;
          uint32_t degree = 0;
          if (!reader.ReadU32(&node) || !reader.ReadU32(&degree)) {
            statuses[s] = util::Status::DataLoss(
                "snapshot section " + std::to_string(s) +
                " truncated mid-entry in " + path);
            return;
          }
          std::vector<graph::NodeId> neighbors(degree);
          bool ok = true;
          for (uint32_t d = 0; d < degree && (ok = reader.ReadU32(&neighbors[d]));
               ++d) {
          }
          if (!ok) {
            statuses[s] = util::Status::DataLoss(
                "snapshot entry payload truncated in " + path);
            return;
          }
          neighbor_lists.push_back(std::move(neighbors));
          imports.push_back(
              {node, std::span<const graph::NodeId>(neighbor_lists.back())});
        }
        if (reader.remaining() != 0) {
          statuses[s] = util::Status::DataLoss(
              "snapshot section " + std::to_string(s) +
              " has trailing bytes in " + path);
          return;
        }
        cache.BulkPut(imports);
      },
      num_threads);
  for (const util::Status& status : statuses) {
    HW_RETURN_IF_ERROR(status);
  }
  return meta;
}

util::Result<SnapshotMeta> InspectSnapshot(const std::string& path) {
  HW_ASSIGN_OR_RETURN(std::string data, ReadFileBytes(path, "snapshot"));
  SnapshotMeta meta;
  std::vector<DirRow> rows;
  HW_RETURN_IF_ERROR(ParseHeader(data, path, &meta, &rows));
  return meta;
}

}  // namespace histwalk::store
