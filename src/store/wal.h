#ifndef HISTWALK_STORE_WAL_H_
#define HISTWALK_STORE_WAL_H_

#include <fstream>
#include <memory>
#include <string>

#include "access/history_cache.h"
#include "util/status.h"

// Append-only write-ahead log of neighbor-list insertions. Between
// snapshots, every response the crawl fetches is appended here; replaying
// the log on top of the last snapshot reconstructs the cache a crashed
// crawl had built, so the next run re-walks its cached prefix for free
// instead of re-paying the service ("Walk, Not Wait").
//
// File layout (little-endian, see store/format.h):
//
//   header   magic 'HWWL' | version u32
//   records  length u32 | crc32(payload) u32 | payload
//            payload = node u32 | degree u32 | degree * neighbor u32
//
// Crash-safety contract:
//  * A record is visible iff fully written; replay applies records in
//    order until the first incomplete one.
//  * A torn tail (crash mid-append: the file ends inside a record, or the
//    final record fails its CRC) is TOLERATED: replay drops the tail,
//    reports it, and Open() repairs the file by truncating to the last
//    valid boundary so new appends never land after garbage.
//  * Corruption anywhere else — bad magic, a CRC mismatch with more data
//    after it, a record length past kMaxWalRecordPayload — is kDataLoss:
//    the log cannot be trusted past that point and is never silently
//    half-replayed.
//  * Scope: the contract covers PROCESS death (kill -9, crash, OOM).
//    Appends are flushed, not fsync'd, so power loss or a kernel crash can
//    drop page-cache writes beyond what replay can repair.

namespace histwalk::store {

struct WalWriterOptions {
  // Flush the stream after every append. Keeps the every-record-durable
  // contract on clean process exit and most crashes; turn off for bulk
  // experiment runs where the WAL is only a convenience.
  bool flush_each_record = true;
};

struct WalScan {
  uint64_t valid_records = 0;
  uint64_t valid_bytes = 0;      // prefix length ending at a record boundary
  bool torn_tail = false;        // bytes after the last valid boundary
  uint64_t dropped_bytes = 0;    // size of that torn tail
};

// Validates `path` without touching any cache. kNotFound if the file does
// not exist; kDataLoss on interior corruption.
util::Result<WalScan> ScanWal(const std::string& path);

struct WalReplayReport {
  uint64_t records_applied = 0;   // valid records walked
  uint64_t records_inserted = 0;  // of those, entries new to the cache
  bool recovered_torn_tail = false;
  uint64_t dropped_bytes = 0;
};

// Replays every valid record into `cache` (Put semantics: idempotent,
// evicting). Tolerates a torn tail; fails with kDataLoss on interior
// corruption, applying nothing in that case. kNotFound when there is no
// log yet.
util::Result<WalReplayReport> ReplayWal(const std::string& path,
                                        access::HistoryCache& cache);

class WalWriter {
 public:
  // Opens `path` for appending, creating it (with a fresh header) if
  // missing, and repairing a torn tail by truncation first. Refuses a log
  // with interior corruption (kDataLoss) or a foreign version
  // (kFailedPrecondition). Not thread-safe — callers (store::HistoryStore)
  // serialize appends.
  static util::Result<std::unique_ptr<WalWriter>> Open(
      const std::string& path, WalWriterOptions options = {});

  ~WalWriter();  // flushes

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  util::Status Append(graph::NodeId v,
                      std::span<const graph::NodeId> neighbors);
  util::Status Flush();

  // Truncates the log back to a bare header — called by checkpointing once
  // the logged entries are folded into a snapshot.
  util::Status Reset();

  const std::string& path() const { return path_; }
  // True when Open() found and truncated a torn tail (crash mid-append).
  bool repaired_torn_tail() const { return repaired_torn_tail_; }
  uint64_t repaired_dropped_bytes() const { return repaired_dropped_bytes_; }
  // Total file bytes including the header and any pre-existing records —
  // the size checkpoint policies threshold on.
  uint64_t file_bytes() const { return file_bytes_; }
  uint64_t records_appended() const { return records_appended_; }

 private:
  WalWriter(std::string path, WalWriterOptions options);

  std::string path_;
  WalWriterOptions options_;
  std::ofstream out_;
  uint64_t file_bytes_ = 0;
  uint64_t records_appended_ = 0;
  bool repaired_torn_tail_ = false;
  uint64_t repaired_dropped_bytes_ = 0;
  std::string scratch_;  // reused record buffer
};

}  // namespace histwalk::store

#endif  // HISTWALK_STORE_WAL_H_
