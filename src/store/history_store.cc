#include "store/history_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "obs/profiler.h"
#include "util/check.h"

namespace histwalk::store {

HistoryStore::HistoryStore(HistoryStoreOptions options)
    : options_(std::move(options)) {}

util::Result<std::unique_ptr<HistoryStore>> HistoryStore::Open(
    HistoryStoreOptions options) {
  HW_CHECK(!options.snapshot_path.empty());
  std::unique_ptr<HistoryStore> store(new HistoryStore(std::move(options)));
  if (!store->options_.wal_path.empty()) {
    auto wal = WalWriter::Open(
        store->options_.wal_path,
        {.flush_each_record = store->options_.flush_each_append});
    if (!wal.ok()) return wal.status();
    store->wal_ = *std::move(wal);
    store->stats_.wal_bytes = store->wal_->file_bytes();
    // Open() may already have repaired a crash's torn tail; surface that
    // here since the subsequent replay sees only the repaired file.
    store->stats_.recovered_torn_tail = store->wal_->repaired_torn_tail();
    // Leftover fold segments mean a background checkpoint never finished
    // (crash or write failure). Adopt them: LoadInto replays them, and the
    // next fold — which snapshots the rebuilt cache, a superset of every
    // segment — retires them.
    store->AdoptFoldSegments();
    if (store->options_.checkpoint_wal_bytes != 0 &&
        store->options_.background_checkpoint) {
      store->checkpoint_thread_ =
          std::thread([s = store.get()] { s->CheckpointThreadLoop(); });
    }
  }
  return store;
}

HistoryStore::~HistoryStore() {
  if (checkpoint_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    ckpt_cv_.notify_all();
    checkpoint_thread_.join();
  }
  Flush();
}

util::Status HistoryStore::LoadInto(access::HistoryCache& cache) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.load_snapshot) {
    const std::string& snapshot_path = options_.load_snapshot_path.empty()
                                           ? options_.snapshot_path
                                           : options_.load_snapshot_path;
    auto snapshot = LoadSnapshot(snapshot_path, cache, options_.num_threads);
    if (snapshot.ok()) {
      stats_.loaded_snapshot_entries += snapshot->entries;
    } else if (snapshot.status().code() != util::StatusCode::kNotFound) {
      return snapshot.status();
    }
  }
  if (!options_.wal_path.empty()) {
    // Fold segments first, oldest first (they predate the active WAL),
    // then the active WAL on top; all replays are idempotent.
    std::vector<std::string> replay_paths = fold_segments_;
    replay_paths.push_back(options_.wal_path);
    for (const std::string& path : replay_paths) {
      auto replay = ReplayWal(path, cache);
      if (replay.ok()) {
        stats_.replayed_wal_records += replay->records_applied;
        stats_.replayed_wal_inserted += replay->records_inserted;
        stats_.recovered_torn_tail |= replay->recovered_torn_tail;
      } else if (replay.status().code() != util::StatusCode::kNotFound) {
        return replay.status();
      }
    }
  }
  return util::Status::Ok();
}

void HistoryStore::OnCacheInsert(graph::NodeId v,
                                 std::span<const graph::NodeId> neighbors,
                                 access::HistoryCache& cache) {
  if (options_.wal_path.empty()) return;  // WAL disabled (immutable config)
  HW_PROF_SCOPE("store/append");
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) {
    // A rotation's reopen failed earlier (transient IO error); retry it
    // here so journaling self-heals. Until it succeeds, every dropped
    // record is counted as an append failure.
    auto reopened =
        WalWriter::Open(options_.wal_path,
                        {.flush_each_record = options_.flush_each_append});
    if (!reopened.ok()) {
      RecordError(reopened.status(), /*dropped_record=*/true);
      return;
    }
    wal_ = *std::move(reopened);
  }
  util::Status status = wal_->Append(v, neighbors);
  if (!status.ok()) {
    RecordError(status, /*dropped_record=*/true);
    return;
  }
  ++stats_.appended_records;
  stats_.wal_bytes = wal_->file_bytes();
  // Emitted under mu_ so store-track event order equals journal order.
  HW_TRACE_INSTANT_ARGS(tracer_, trace_track_, "journal_append",
                        "\"node\":" + std::to_string(v) + ",\"neighbors\":" +
                            std::to_string(neighbors.size()));
  if (options_.checkpoint_wal_bytes == 0 ||
      wal_->file_bytes() < options_.checkpoint_wal_bytes) {
    return;
  }
  if (options_.background_checkpoint) {
    // Rotate + pin here (cheap), serialize + write on the checkpoint
    // thread: this insert never waits for a snapshot write. While a fold
    // is already in flight the rotation still happens — the active WAL is
    // parked on the fold segment list instead of growing past the
    // threshold — and the freshly pinned export supersedes any fold
    // already queued.
    RequestBackgroundFold(cache);
  } else {
    // Inline fold, still under mu_. Holding the lock is what makes the
    // fold loss-free with a single WAL: a concurrent fetcher's cache
    // insert lands BEFORE it blocks here to journal, so every record the
    // reset erases is either in this snapshot or not yet journaled (it
    // lands in the fresh WAL afterwards) — never dropped. The cost is
    // that concurrent fetch completions stall for the length of one
    // snapshot write each time the threshold trips.
    RecordError(CheckpointLocked(cache), /*dropped_record=*/false);
  }
}

void HistoryStore::AdoptFoldSegments() {
  fold_segments_.clear();
  std::error_code ec;
  if (std::filesystem::exists(fold_path(), ec) && !ec) {
    fold_segments_.push_back(fold_path());
  }
  // Numbered segments ("<wal>.fold.<N>") were rotated after the bare one;
  // adopt them in ascending-N (rotation) order. Matching is on FILENAME
  // (the configured path may spell the directory differently than the
  // iterator, e.g. a doubled slash).
  std::vector<std::pair<uint64_t, std::string>> numbered;
  const std::string prefix =
      std::filesystem::path(fold_path()).filename().string() + ".";
  std::filesystem::path dir =
      std::filesystem::path(options_.wal_path).parent_path();
  if (dir.empty()) dir = ".";
  std::filesystem::directory_iterator it(dir, ec);
  if (!ec) {
    for (const auto& entry : it) {
      const std::string filename = entry.path().filename().string();
      if (filename.rfind(prefix, 0) != 0) continue;
      const std::string suffix = filename.substr(prefix.size());
      char* end = nullptr;
      const uint64_t seq = std::strtoull(suffix.c_str(), &end, 10);
      if (suffix.empty() || end == nullptr || *end != '\0') continue;
      numbered.emplace_back(seq, entry.path().string());
      if (seq >= next_fold_seq_) next_fold_seq_ = seq + 1;
    }
  }
  std::sort(numbered.begin(), numbered.end());
  for (auto& [seq, path] : numbered) {
    fold_segments_.push_back(std::move(path));
  }
  rotated_total_ = fold_segments_.size();
  retired_total_ = 0;
  SyncFoldStats();
}

std::string HistoryStore::NextFoldSegmentPath() {
  // The bare ".fold" name is only (re)used when no segment exists at all,
  // so on-disk segments are always the bare name followed by ascending
  // numbers — the adoption order above matches rotation order.
  std::error_code ec;
  if (fold_segments_.empty() && !(std::filesystem::exists(fold_path(), ec) &&
                                  !ec)) {
    return fold_path();
  }
  return fold_path() + "." + std::to_string(next_fold_seq_++);
}

void HistoryStore::RetireFoldSegments(size_t count) {
  count = std::min(count, fold_segments_.size());
  for (size_t i = 0; i < count; ++i) {
    std::remove(fold_segments_[i].c_str());
  }
  fold_segments_.erase(fold_segments_.begin(),
                       fold_segments_.begin() + static_cast<long>(count));
  retired_total_ += count;
  SyncFoldStats();
}

void HistoryStore::SyncFoldStats() {
  stats_.fold_segment_pending = !fold_segments_.empty();
  stats_.fold_segments_queued = fold_segments_.size();
}

void HistoryStore::RequestBackgroundFold(const access::HistoryCache& cache) {
  if (fold_segments_.size() < kMaxFoldSegments) {
    // Rotate the active log out of the way so post-rotation appends are
    // never retired by this fold. Past the segment cap (folds failing
    // repeatedly) the WAL grows instead — bounded litter over unbounded.
    util::Status flushed = wal_->Flush();
    if (!flushed.ok()) {
      RecordError(flushed, /*dropped_record=*/false);
      return;
    }
    const std::string segment = NextFoldSegmentPath();
    wal_.reset();  // closes the file
    if (std::rename(options_.wal_path.c_str(), segment.c_str()) != 0) {
      RecordError(
          util::Status::Internal("wal rotation rename failed for " +
                                 options_.wal_path),
          /*dropped_record=*/false);
      // Fall through to reopen the (un-renamed) log and keep journaling.
    } else {
      fold_segments_.push_back(segment);
      ++rotated_total_;
      SyncFoldStats();
    }
    auto reopened =
        WalWriter::Open(options_.wal_path,
                        {.flush_each_record = options_.flush_each_append});
    if (!reopened.ok()) {
      // No active WAL for now: each subsequent insert retries the reopen
      // (and counts ITSELF as an append failure until one succeeds — see
      // OnCacheInsert), matching the fire-and-forget journal contract.
      RecordError(reopened.status(), /*dropped_record=*/false);
      return;
    }
    wal_ = *std::move(reopened);
    stats_.wal_bytes = wal_->file_bytes();
  }
  // Pin the export on the inserting thread — the only thread with a
  // guaranteed-live cache reference. A newer export covers every segment
  // rotated so far, so it supersedes any fold still waiting for the
  // checkpoint thread (at most one fold queues behind the in-flight one).
  if (!ckpt_inflight_) {
    ckpt_image_ = ExportCacheImage(cache);
    ckpt_covers_ = rotated_total_;
    ckpt_inflight_ = true;
    ckpt_cv_.notify_one();
  } else {
    queued_image_ = ExportCacheImage(cache);
    queued_covers_ = rotated_total_;
    queued_fold_ = true;
  }
}

void HistoryStore::CheckpointThreadLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    ckpt_cv_.wait(lock, [this] { return stopping_ || ckpt_inflight_; });
    if (!ckpt_inflight_) {
      HW_CHECK(stopping_);
      return;
    }
    ExportedCacheImage image = std::move(ckpt_image_);
    ckpt_image_.clear();
    const uint64_t covers = ckpt_covers_;
    lock.unlock();
    // The expensive part — serialization, CRC, disk write, atomic rename —
    // runs with the journal unlocked: inserts keep landing meanwhile.
    auto written =
        WriteSnapshot(image, options_.snapshot_path, options_.num_threads);
    image.clear();
    lock.lock();
    if (written.ok()) {
      ++stats_.checkpoints;
      // Only the segments the pinned export covered are retired — counted
      // against the monotone rotation clock, so segments rotated while
      // this fold waited or wrote (which the export does NOT cover) are
      // never touched; they stay for the queued fold.
      RetireFoldSegments(covers > retired_total_
                             ? static_cast<size_t>(covers - retired_total_)
                             : 0);
    } else {
      // Keep the fold segments: they still hold the records the snapshot
      // failed to capture, and recovery replays them.
      RecordError(written.status(), /*dropped_record=*/false);
    }
    if (queued_fold_ && !stopping_) {
      // A rotation queued a newer export while we were writing: fold it
      // now. (On a failed write the queued export still covers at least
      // as much, so retrying with it is strictly better.)
      ckpt_image_ = std::move(queued_image_);
      queued_image_.clear();
      ckpt_covers_ = queued_covers_;
      queued_fold_ = false;
      continue;  // stay in flight
    }
    ckpt_inflight_ = false;
    idle_cv_.notify_all();
  }
}

util::Status HistoryStore::Checkpoint(const access::HistoryCache& cache) {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return !ckpt_inflight_; });
  return CheckpointLocked(cache);
}

util::Status HistoryStore::CheckpointLocked(
    const access::HistoryCache& cache) {
  HW_PROF_SCOPE("store/checkpoint");
  const uint64_t ckpt_start_us =
      tracer_ != nullptr ? tracer_->NowUs() : 0;
  auto written =
      WriteSnapshot(cache, options_.snapshot_path, options_.num_threads);
  if (!written.ok()) return written.status();
  if (tracer_ != nullptr) {
    tracer_->Complete(trace_track_, "checkpoint", ckpt_start_us,
                      tracer_->NowUs() - ckpt_start_us,
                      "\"entries\":" + std::to_string(cache.stats().entries));
  }
  if (wal_ != nullptr) {
    HW_RETURN_IF_ERROR(wal_->Reset());
    stats_.wal_bytes = wal_->file_bytes();
  }
  // The snapshot just written covers every fold segment's records (they
  // are cache contents); retire them all.
  RetireFoldSegments(fold_segments_.size());
  ++stats_.checkpoints;
  return util::Status::Ok();
}

void HistoryStore::set_tracer(obs::Tracer* tracer) {
  std::lock_guard<std::mutex> lock(mu_);
  tracer_ = tracer;
  if (tracer_ != nullptr) trace_track_ = tracer_->RegisterTrack("store");
}

util::Status HistoryStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return util::Status::Ok();
  return wal_->Flush();
}

void HistoryStore::WaitForIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return !ckpt_inflight_; });
}

HistoryStoreStats HistoryStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

util::Status HistoryStore::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void HistoryStore::RecordError(const util::Status& status,
                               bool dropped_record) {
  if (status.ok()) return;
  if (dropped_record) {
    ++stats_.append_failures;
  } else {
    ++stats_.checkpoint_failures;
  }
  if (last_error_.ok()) last_error_ = status;
}

}  // namespace histwalk::store
