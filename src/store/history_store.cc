#include "store/history_store.h"

#include <utility>

#include "util/check.h"

namespace histwalk::store {

HistoryStore::HistoryStore(HistoryStoreOptions options)
    : options_(std::move(options)) {}

util::Result<std::unique_ptr<HistoryStore>> HistoryStore::Open(
    HistoryStoreOptions options) {
  HW_CHECK(!options.snapshot_path.empty());
  std::unique_ptr<HistoryStore> store(new HistoryStore(std::move(options)));
  if (!store->options_.wal_path.empty()) {
    auto wal = WalWriter::Open(
        store->options_.wal_path,
        {.flush_each_record = store->options_.flush_each_append});
    if (!wal.ok()) return wal.status();
    store->wal_ = *std::move(wal);
    store->stats_.wal_bytes = store->wal_->file_bytes();
    // Open() may already have repaired a crash's torn tail; surface that
    // here since the subsequent replay sees only the repaired file.
    store->stats_.recovered_torn_tail = store->wal_->repaired_torn_tail();
  }
  return store;
}

HistoryStore::~HistoryStore() { Flush(); }

util::Status HistoryStore::LoadInto(access::HistoryCache& cache) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.load_snapshot) {
    const std::string& snapshot_path = options_.load_snapshot_path.empty()
                                           ? options_.snapshot_path
                                           : options_.load_snapshot_path;
    auto snapshot = LoadSnapshot(snapshot_path, cache, options_.num_threads);
    if (snapshot.ok()) {
      stats_.loaded_snapshot_entries += snapshot->entries;
    } else if (snapshot.status().code() != util::StatusCode::kNotFound) {
      return snapshot.status();
    }
  }
  if (!options_.wal_path.empty()) {
    auto replay = ReplayWal(options_.wal_path, cache);
    if (replay.ok()) {
      stats_.replayed_wal_records += replay->records_applied;
      stats_.replayed_wal_inserted += replay->records_inserted;
      stats_.recovered_torn_tail |= replay->recovered_torn_tail;
    } else if (replay.status().code() != util::StatusCode::kNotFound) {
      return replay.status();
    }
  }
  return util::Status::Ok();
}

void HistoryStore::OnCacheInsert(graph::NodeId v,
                                 std::span<const graph::NodeId> neighbors,
                                 access::HistoryCache& cache) {
  if (wal_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  util::Status status = wal_->Append(v, neighbors);
  if (!status.ok()) {
    RecordError(status);
    return;
  }
  ++stats_.appended_records;
  stats_.wal_bytes = wal_->file_bytes();
  if (options_.checkpoint_wal_bytes != 0 &&
      wal_->file_bytes() >= options_.checkpoint_wal_bytes) {
    // Fold the log into a snapshot, still under mu_. Holding the lock is
    // what makes the fold loss-free with a single WAL: a concurrent
    // fetcher's cache insert lands BEFORE it blocks here to journal, so
    // every record the reset erases is either in this snapshot or not yet
    // journaled (it lands in the fresh WAL afterwards) — never dropped.
    // The cost is that concurrent fetch completions stall for the length
    // of one snapshot write each time the threshold trips; size
    // checkpoint_wal_bytes accordingly (segment-rotated WALs with an
    // off-thread fold are the ROADMAP answer).
    RecordError(CheckpointLocked(cache));
  }
}

util::Status HistoryStore::Checkpoint(const access::HistoryCache& cache) {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked(cache);
}

util::Status HistoryStore::CheckpointLocked(
    const access::HistoryCache& cache) {
  auto written =
      WriteSnapshot(cache, options_.snapshot_path, options_.num_threads);
  if (!written.ok()) return written.status();
  if (wal_ != nullptr) {
    HW_RETURN_IF_ERROR(wal_->Reset());
    stats_.wal_bytes = wal_->file_bytes();
  }
  ++stats_.checkpoints;
  return util::Status::Ok();
}

util::Status HistoryStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return util::Status::Ok();
  return wal_->Flush();
}

HistoryStoreStats HistoryStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

util::Status HistoryStore::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void HistoryStore::RecordError(const util::Status& status) {
  if (status.ok()) return;
  ++stats_.append_failures;
  if (last_error_.ok()) last_error_ = status;
}

}  // namespace histwalk::store
