#include "store/history_store.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "util/check.h"

namespace histwalk::store {

HistoryStore::HistoryStore(HistoryStoreOptions options)
    : options_(std::move(options)) {}

util::Result<std::unique_ptr<HistoryStore>> HistoryStore::Open(
    HistoryStoreOptions options) {
  HW_CHECK(!options.snapshot_path.empty());
  std::unique_ptr<HistoryStore> store(new HistoryStore(std::move(options)));
  if (!store->options_.wal_path.empty()) {
    auto wal = WalWriter::Open(
        store->options_.wal_path,
        {.flush_each_record = store->options_.flush_each_append});
    if (!wal.ok()) return wal.status();
    store->wal_ = *std::move(wal);
    store->stats_.wal_bytes = store->wal_->file_bytes();
    // Open() may already have repaired a crash's torn tail; surface that
    // here since the subsequent replay sees only the repaired file.
    store->stats_.recovered_torn_tail = store->wal_->repaired_torn_tail();
    // A leftover fold segment means a background checkpoint never finished
    // (crash or write failure). Adopt it: LoadInto replays it, and the
    // next fold — which snapshots the rebuilt cache, a superset of the
    // segment — retires it.
    std::error_code ec;
    store->fold_pending_ =
        std::filesystem::exists(store->fold_path(), ec) && !ec;
    store->stats_.fold_segment_pending = store->fold_pending_;
    if (store->options_.checkpoint_wal_bytes != 0 &&
        store->options_.background_checkpoint) {
      store->checkpoint_thread_ =
          std::thread([s = store.get()] { s->CheckpointThreadLoop(); });
    }
  }
  return store;
}

HistoryStore::~HistoryStore() {
  if (checkpoint_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    ckpt_cv_.notify_all();
    checkpoint_thread_.join();
  }
  Flush();
}

util::Status HistoryStore::LoadInto(access::HistoryCache& cache) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.load_snapshot) {
    const std::string& snapshot_path = options_.load_snapshot_path.empty()
                                           ? options_.snapshot_path
                                           : options_.load_snapshot_path;
    auto snapshot = LoadSnapshot(snapshot_path, cache, options_.num_threads);
    if (snapshot.ok()) {
      stats_.loaded_snapshot_entries += snapshot->entries;
    } else if (snapshot.status().code() != util::StatusCode::kNotFound) {
      return snapshot.status();
    }
  }
  if (!options_.wal_path.empty()) {
    // Fold segment first (it predates the active WAL), then the active WAL
    // on top; both replays are idempotent.
    for (const std::string& path : {fold_path(), options_.wal_path}) {
      auto replay = ReplayWal(path, cache);
      if (replay.ok()) {
        stats_.replayed_wal_records += replay->records_applied;
        stats_.replayed_wal_inserted += replay->records_inserted;
        stats_.recovered_torn_tail |= replay->recovered_torn_tail;
      } else if (replay.status().code() != util::StatusCode::kNotFound) {
        return replay.status();
      }
    }
  }
  return util::Status::Ok();
}

void HistoryStore::OnCacheInsert(graph::NodeId v,
                                 std::span<const graph::NodeId> neighbors,
                                 access::HistoryCache& cache) {
  if (options_.wal_path.empty()) return;  // WAL disabled (immutable config)
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) {
    // A rotation's reopen failed earlier (transient IO error); retry it
    // here so journaling self-heals. Until it succeeds, every dropped
    // record is counted as an append failure.
    auto reopened =
        WalWriter::Open(options_.wal_path,
                        {.flush_each_record = options_.flush_each_append});
    if (!reopened.ok()) {
      RecordError(reopened.status(), /*dropped_record=*/true);
      return;
    }
    wal_ = *std::move(reopened);
  }
  util::Status status = wal_->Append(v, neighbors);
  if (!status.ok()) {
    RecordError(status, /*dropped_record=*/true);
    return;
  }
  ++stats_.appended_records;
  stats_.wal_bytes = wal_->file_bytes();
  if (options_.checkpoint_wal_bytes == 0 ||
      wal_->file_bytes() < options_.checkpoint_wal_bytes) {
    return;
  }
  if (options_.background_checkpoint) {
    // Rotate + pin here (cheap), serialize + write on the checkpoint
    // thread: this insert never waits for a snapshot write.
    if (!ckpt_inflight_) RequestBackgroundFold(cache);
  } else {
    // Inline fold, still under mu_. Holding the lock is what makes the
    // fold loss-free with a single WAL: a concurrent fetcher's cache
    // insert lands BEFORE it blocks here to journal, so every record the
    // reset erases is either in this snapshot or not yet journaled (it
    // lands in the fresh WAL afterwards) — never dropped. The cost is
    // that concurrent fetch completions stall for the length of one
    // snapshot write each time the threshold trips.
    RecordError(CheckpointLocked(cache), /*dropped_record=*/false);
  }
}

void HistoryStore::RequestBackgroundFold(const access::HistoryCache& cache) {
  if (!fold_pending_) {
    // Rotate the active log out of the way so post-rotation appends are
    // never retired by this fold. If a fold segment already exists (a
    // previous fold failed or a crash left one), skip the rotation — the
    // snapshot we are about to take covers that segment too, and rotating
    // over it would lose its records.
    util::Status flushed = wal_->Flush();
    if (!flushed.ok()) {
      RecordError(flushed, /*dropped_record=*/false);
      return;
    }
    wal_.reset();  // closes the file
    if (std::rename(options_.wal_path.c_str(), fold_path().c_str()) != 0) {
      RecordError(
          util::Status::Internal("wal rotation rename failed for " +
                                 options_.wal_path),
          /*dropped_record=*/false);
      // Fall through to reopen the (un-renamed) log and keep journaling.
    } else {
      fold_pending_ = true;
      stats_.fold_segment_pending = true;
    }
    auto reopened =
        WalWriter::Open(options_.wal_path,
                        {.flush_each_record = options_.flush_each_append});
    if (!reopened.ok()) {
      // No active WAL for now: each subsequent insert retries the reopen
      // (and counts ITSELF as an append failure until one succeeds — see
      // OnCacheInsert), matching the fire-and-forget journal contract.
      RecordError(reopened.status(), /*dropped_record=*/false);
      return;
    }
    wal_ = *std::move(reopened);
    stats_.wal_bytes = wal_->file_bytes();
  }
  ckpt_image_ = ExportCacheImage(cache);
  ckpt_inflight_ = true;
  ckpt_cv_.notify_one();
}

void HistoryStore::CheckpointThreadLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    ckpt_cv_.wait(lock, [this] { return stopping_ || ckpt_inflight_; });
    if (!ckpt_inflight_) {
      HW_CHECK(stopping_);
      return;
    }
    ExportedCacheImage image = std::move(ckpt_image_);
    ckpt_image_.clear();
    lock.unlock();
    // The expensive part — serialization, CRC, disk write, atomic rename —
    // runs with the journal unlocked: inserts keep landing meanwhile.
    auto written =
        WriteSnapshot(image, options_.snapshot_path, options_.num_threads);
    image.clear();
    lock.lock();
    if (written.ok()) {
      ++stats_.checkpoints;
      if (fold_pending_) {
        std::remove(fold_path().c_str());
        fold_pending_ = false;
        stats_.fold_segment_pending = false;
      }
    } else {
      // Keep the fold segment: it still holds the records the snapshot
      // failed to capture, and recovery replays it.
      RecordError(written.status(), /*dropped_record=*/false);
    }
    ckpt_inflight_ = false;
    idle_cv_.notify_all();
  }
}

util::Status HistoryStore::Checkpoint(const access::HistoryCache& cache) {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return !ckpt_inflight_; });
  return CheckpointLocked(cache);
}

util::Status HistoryStore::CheckpointLocked(
    const access::HistoryCache& cache) {
  auto written =
      WriteSnapshot(cache, options_.snapshot_path, options_.num_threads);
  if (!written.ok()) return written.status();
  if (wal_ != nullptr) {
    HW_RETURN_IF_ERROR(wal_->Reset());
    stats_.wal_bytes = wal_->file_bytes();
  }
  if (fold_pending_) {
    // The snapshot just written covers the fold segment's records (they
    // are cache contents); retire it.
    std::remove(fold_path().c_str());
    fold_pending_ = false;
    stats_.fold_segment_pending = false;
  }
  ++stats_.checkpoints;
  return util::Status::Ok();
}

util::Status HistoryStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return util::Status::Ok();
  return wal_->Flush();
}

void HistoryStore::WaitForIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return !ckpt_inflight_; });
}

HistoryStoreStats HistoryStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

util::Status HistoryStore::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void HistoryStore::RecordError(const util::Status& status,
                               bool dropped_record) {
  if (status.ok()) return;
  if (dropped_record) {
    ++stats_.append_failures;
  } else {
    ++stats_.checkpoint_failures;
  }
  if (last_error_.ok()) last_error_ = status;
}

}  // namespace histwalk::store
