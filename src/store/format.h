#ifndef HISTWALK_STORE_FORMAT_H_
#define HISTWALK_STORE_FORMAT_H_

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>

#include "util/status.h"

// Shared on-disk encoding for the store layer's two file kinds:
//
//   snapshot  (store/snapshot.h)  — full HistoryCache image, per-shard
//                                   sections, written atomically
//   WAL       (store/wal.h)       — append-only log of cache insertions,
//                                   replayed on top of a snapshot
//
// Both start with a 4-byte magic and a u32 format-version field, and both
// checksum their payloads with util::Crc32 so corruption surfaces as the
// typed kDataLoss status instead of as silently wrong cache contents. All
// integers are fixed-width little-endian regardless of host byte order —
// files written on one platform load on any other.

namespace histwalk::store {

inline constexpr uint32_t kSnapshotMagic = 0x53535748;  // "HWSS"
inline constexpr uint32_t kWalMagic = 0x4C575748;       // "HWWL"

// Bumped whenever the record layout changes. Readers refuse other versions
// with kFailedPrecondition (a versioning problem, not data loss).
inline constexpr uint32_t kFormatVersion = 1;

// Upper bound on a single WAL record payload (a quarter-billion-neighbor
// list is not a real response). A declared length beyond this is corruption
// of the length field itself, not a torn write — without the bound, a
// bit-flipped length would read as "file ends inside this record" and
// silently truncate everything after it.
inline constexpr uint32_t kMaxWalRecordPayload = 1u << 28;  // 256 MiB

// Durability scope, shared by both file kinds: writes are flushed through
// the C++ stream layer but never fsync'd, so the crash-safety contract
// covers PROCESS death (kill -9, crash, OOM), not power loss or kernel
// crashes — a lost page cache can drop or tear recent writes beyond what
// the formats promise to repair.

// Reads a whole store file into memory. kNotFound ONLY when the file does
// not exist (a clean cold start everywhere in this layer); any other
// open/read failure is kInternal. The distinction is load-bearing:
// WalWriter::Open recreates a kNotFound log from scratch, so a transient
// open failure (permissions, fd exhaustion) must never masquerade as
// "no log yet" and truncate real history.
inline util::Result<std::string> ReadFileBytes(const std::string& path,
                                               const char* kind) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    if (!std::filesystem::exists(path, ec) && !ec) {
      return util::Status::NotFound(std::string("no ") + kind + " at " +
                                    path);
    }
    // Exists but is not a readable regular file (a directory, a special
    // file, or stat itself failed) — never a silent cold start.
    return util::Status::Internal(std::string("cannot open ") + kind +
                                  " at " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::Internal(std::string("cannot open ") + kind +
                                  " at " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return util::Status::Internal("read failed for " + path);
  }
  return data;
}

// ---- little-endian primitives ----------------------------------------------

inline void AppendU32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

inline void AppendU64(std::string& out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFull));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

// Bounds-checked sequential reader over a byte buffer. Every Read* returns
// false on underrun instead of reading past the end — the caller decides
// whether that underrun means a tolerable truncated tail (WAL) or data
// loss (snapshot).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
    *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (remaining() < 8 || !ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  // Hands out a view of the next `n` bytes without copying.
  bool ReadBytes(size_t n, std::string_view* out) {
    if (remaining() < n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace histwalk::store

#endif  // HISTWALK_STORE_FORMAT_H_
