#ifndef HISTWALK_STORE_HISTORY_STORE_H_
#define HISTWALK_STORE_HISTORY_STORE_H_

#include <memory>
#include <mutex>
#include <string>

#include "access/history_cache.h"
#include "access/history_journal.h"
#include "store/snapshot.h"
#include "store/wal.h"

// The durable history subsystem: one snapshot file + one WAL, managed
// together. Attach a HistoryStore to a SharedAccessGroup
// (group.set_history_journal(&store)) and every neighbor list the crawl
// fetches — through the synchronous miss path or the request pipeline —
// is journaled as it lands in the shared cache; LoadInto() rebuilds that
// cache in a fresh process, so crawls resume across restarts and a second
// sampling task starts warm (the paper's history reuse, made persistent).
//
// Recovery order (LoadInto): snapshot first, then WAL replay on top. Both
// are idempotent inserts, so the WAL may overlap the snapshot (see
// Checkpoint below) without harm. A missing snapshot or WAL is a clean
// cold start, not an error.
//
// Checkpointing: once the WAL grows past `checkpoint_wal_bytes`, the store
// folds the CURRENT cache contents into a fresh snapshot (atomic
// tmp+rename) and truncates the WAL. Process-crash windows are safe by
// construction:
//   * crash before the rename       -> old snapshot + full WAL, as before;
//   * crash after rename, before    -> new snapshot + stale WAL; replaying
//     the WAL truncation               the stale WAL is idempotent.
// (Like the WAL itself, this covers process death, not power loss: files
// are flushed, never fsync'd — see the durability note in store/format.h.)
//
// Journal errors (disk full, ...) never fail the crawl: OnCacheInsert is
// fire-and-forget by interface; failures are counted in stats() and the
// first one is kept in last_error().

namespace histwalk::store {

struct HistoryStoreOptions {
  // Snapshot written by Checkpoint() and loaded by LoadInto().
  std::string snapshot_path;
  // Separate read source for LoadInto(), when resuming FROM one file while
  // checkpointing TO another; "" = snapshot_path.
  std::string load_snapshot_path;
  // false = LoadInto() skips the snapshot (WAL replay still runs): the
  // store only WRITES snapshot_path. Lets a save-only caller reuse a path
  // an earlier run wrote without silently warm-starting from it.
  bool load_snapshot = true;
  // "" disables the WAL entirely: the store is snapshot-only and durability
  // is whatever the caller's explicit Checkpoint() calls provide.
  std::string wal_path;
  // Fold the WAL into a fresh snapshot once it exceeds this many bytes;
  // 0 = never checkpoint automatically. The fold runs on the inserting
  // thread under the journal lock (that is what makes it loss-free —
  // see the comment in OnCacheInsert), so concurrent fetch completions
  // stall for one snapshot write whenever the threshold trips; size it
  // so folds are rare relative to the crawl.
  uint64_t checkpoint_wal_bytes = 8ull * 1024 * 1024;
  // See WalWriterOptions.
  bool flush_each_append = true;
  // Threads for parallel snapshot save/load (0 = hardware concurrency).
  unsigned num_threads = 0;
};

struct HistoryStoreStats {
  uint64_t loaded_snapshot_entries = 0;
  uint64_t replayed_wal_records = 0;
  uint64_t replayed_wal_inserted = 0;
  bool recovered_torn_tail = false;
  uint64_t appended_records = 0;
  uint64_t append_failures = 0;
  uint64_t checkpoints = 0;
  uint64_t wal_bytes = 0;  // current WAL size (0 when the WAL is disabled)
};

class HistoryStore final : public access::HistoryJournal {
 public:
  // Opens (creating or repairing as needed) the WAL when configured.
  // Refuses corrupt files with kDataLoss — recovery policy is the
  // caller's call, never silent.
  static util::Result<std::unique_ptr<HistoryStore>> Open(
      HistoryStoreOptions options);

  ~HistoryStore() override;  // flushes the WAL

  // Rebuilds `cache` from the snapshot (if any) plus the WAL (if any).
  // Tolerates a torn WAL tail (reported in stats()); fails with kDataLoss
  // on interior corruption of either file.
  util::Status LoadInto(access::HistoryCache& cache);

  // access::HistoryJournal — called by the access layer for every new
  // cache insert. Appends to the WAL and auto-checkpoints past the
  // threshold. Thread-safe.
  void OnCacheInsert(graph::NodeId v, std::span<const graph::NodeId> neighbors,
                     access::HistoryCache& cache) override;

  // Folds `cache` into a fresh snapshot now and truncates the WAL.
  util::Status Checkpoint(const access::HistoryCache& cache);

  util::Status Flush();

  HistoryStoreStats stats() const;
  // OK, or the first journaling failure since construction.
  util::Status last_error() const;

  const HistoryStoreOptions& options() const { return options_; }

 private:
  explicit HistoryStore(HistoryStoreOptions options);

  util::Status CheckpointLocked(const access::HistoryCache& cache);
  void RecordError(const util::Status& status);

  HistoryStoreOptions options_;
  std::unique_ptr<WalWriter> wal_;  // null when the WAL is disabled

  mutable std::mutex mu_;  // serializes appends, checkpoints, stats
  HistoryStoreStats stats_;
  util::Status last_error_;
};

}  // namespace histwalk::store

#endif  // HISTWALK_STORE_HISTORY_STORE_H_
