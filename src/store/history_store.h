#ifndef HISTWALK_STORE_HISTORY_STORE_H_
#define HISTWALK_STORE_HISTORY_STORE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "access/history_cache.h"
#include "access/history_journal.h"
#include "obs/trace.h"
#include "store/snapshot.h"
#include "store/wal.h"

// The durable history subsystem: one snapshot file + one WAL, managed
// together. Attach a HistoryStore to a SharedAccessGroup
// (group.set_history_journal(&store)) and every neighbor list the crawl
// fetches — through the synchronous miss path or the request pipeline —
// is journaled as it lands in the shared cache; LoadInto() rebuilds that
// cache in a fresh process, so crawls resume across restarts and a second
// sampling task starts warm (the paper's history reuse, made persistent).
//
// Recovery order (LoadInto): snapshot first, then the rotated-out fold
// segment (if a background checkpoint was interrupted — see below), then
// the active WAL. All replays are idempotent inserts, so the segments may
// overlap the snapshot without harm. Missing files are a clean cold start,
// not an error.
//
// Checkpointing: once the WAL grows past `checkpoint_wal_bytes`, the store
// folds the CURRENT cache contents into a fresh snapshot (atomic
// tmp+rename) and retires the logged records. Two modes:
//
//  * background_checkpoint = true (default): the tripping insert only
//    ROTATES the WAL (the active log is renamed to `<wal_path>.fold` and a
//    fresh one opened — a few syscalls) and pins an in-memory export of
//    the cache; a dedicated checkpoint thread serializes and writes the
//    snapshot and then deletes the fold segment. Inserts never stall on
//    serialization or disk IO — the ROADMAP "background checkpointing off
//    the insert path" item. Crash windows are safe by construction:
//      - crash before the snapshot rename -> old snapshot + fold segment +
//        active WAL replay to the full history;
//      - crash after the rename, before the fold delete -> the fold
//        segment overlaps the new snapshot; replaying it is idempotent,
//        and the next checkpoint (or Checkpoint()) deletes it.
//    The rotation invariant that makes the fold loss-free: a cache insert
//    always lands BEFORE its journal append, so every record in the
//    rotated-out segment is in the cache when the post-rotation export
//    pins it (minus entries a bounded cache evicted — the cache is the
//    source of truth, as in the inline mode). Rotated segments form a
//    LIST (`<wal>.fold`, then `<wal>.fold.2`, `<wal>.fold.3`, ... in
//    rotation order): while one fold is in flight, a second tripping
//    insert still rotates the active WAL into a fresh queued segment —
//    the WAL never grows past threshold + one insert — and re-pins a
//    newer cache export that supersedes any fold already queued (the
//    newest export covers every earlier segment's records, so at most one
//    fold waits behind the in-flight one regardless of how many segments
//    rotation queued). A successful fold retires every segment the pinned
//    export covered, oldest first. The segment count is capped
//    (kMaxFoldSegments); in the pathological case of folds failing
//    repeatedly the WAL falls back to growing past the threshold rather
//    than littering the directory.
//  * background_checkpoint = false: the PR-3 inline behaviour — the fold
//    (snapshot write included) runs on the inserting thread under the
//    journal lock, stalling concurrent fetch completions for the length
//    of one snapshot write.
//
// (Like the WAL itself, checkpointing covers process death, not power
// loss: files are flushed, never fsync'd — see the note in store/format.h.)
//
// Journal errors (disk full, ...) never fail the crawl: OnCacheInsert is
// fire-and-forget by interface; failures are counted in stats() and the
// first one is kept in last_error().

namespace histwalk::store {

struct HistoryStoreOptions {
  // Snapshot written by Checkpoint() and loaded by LoadInto().
  std::string snapshot_path;
  // Separate read source for LoadInto(), when resuming FROM one file while
  // checkpointing TO another; "" = snapshot_path.
  std::string load_snapshot_path;
  // false = LoadInto() skips the snapshot (WAL replay still runs): the
  // store only WRITES snapshot_path. Lets a save-only caller reuse a path
  // an earlier run wrote without silently warm-starting from it.
  bool load_snapshot = true;
  // "" disables the WAL entirely: the store is snapshot-only and durability
  // is whatever the caller's explicit Checkpoint() calls provide.
  std::string wal_path;
  // Fold the WAL into a fresh snapshot once it exceeds this many bytes;
  // 0 = never checkpoint automatically.
  uint64_t checkpoint_wal_bytes = 8ull * 1024 * 1024;
  // Run automatic folds on a background thread (see the mode comparison
  // above). The tripping insert still pays the WAL rotation plus an
  // O(entries) pin-export of the cache; serialization and disk IO move
  // off-path.
  bool background_checkpoint = true;
  // See WalWriterOptions.
  bool flush_each_append = true;
  // Threads for parallel snapshot save/load (0 = hardware concurrency).
  unsigned num_threads = 0;
};

struct HistoryStoreStats {
  uint64_t loaded_snapshot_entries = 0;
  uint64_t replayed_wal_records = 0;
  uint64_t replayed_wal_inserted = 0;
  bool recovered_torn_tail = false;
  uint64_t appended_records = 0;
  // Records DROPPED from the journal (a failed append, or an insert that
  // arrived while the WAL could not be reopened after a failed rotation).
  uint64_t append_failures = 0;
  uint64_t checkpoints = 0;
  // Failed fold attempts (snapshot write, WAL rotation) — no record was
  // dropped: the WAL and/or fold segment still hold everything, and the
  // next attempt retries.
  uint64_t checkpoint_failures = 0;
  uint64_t wal_bytes = 0;  // current active-WAL size (0 when disabled)
  // True while rotated-out fold segments exist on disk (a background
  // checkpoint is in flight, failed, or was interrupted by a crash).
  bool fold_segment_pending = false;
  // How many rotated-out segments exist right now (the fold queue depth).
  uint64_t fold_segments_queued = 0;
};

class HistoryStore final : public access::HistoryJournal {
 public:
  // Opens (creating or repairing as needed) the WAL when configured, and
  // adopts a leftover fold segment from an interrupted background
  // checkpoint. Refuses corrupt files with kDataLoss — recovery policy is
  // the caller's call, never silent.
  static util::Result<std::unique_ptr<HistoryStore>> Open(
      HistoryStoreOptions options);

  // Finishes any in-flight background checkpoint, then flushes the WAL.
  ~HistoryStore() override;

  // Rebuilds `cache` from the snapshot (if any), the fold segment (if a
  // background checkpoint was interrupted) and the WAL (if any).
  // Tolerates a torn WAL tail (reported in stats()); fails with kDataLoss
  // on interior corruption of any file.
  util::Status LoadInto(access::HistoryCache& cache);

  // access::HistoryJournal — called by the access layer for every new
  // cache insert. Appends to the WAL and auto-checkpoints past the
  // threshold. Thread-safe.
  void OnCacheInsert(graph::NodeId v, std::span<const graph::NodeId> neighbors,
                     access::HistoryCache& cache) override;

  // Folds `cache` into a fresh snapshot now, truncates the WAL and deletes
  // any fold segment. Synchronous; waits for an in-flight background
  // checkpoint first.
  util::Status Checkpoint(const access::HistoryCache& cache);

  util::Status Flush();

  // Attaches (or detaches, with nullptr) a tracer: journal appends become
  // instants and checkpoints 'X' complete events on a "store" track. The
  // tracer must outlive the attachment; attach before journaling starts.
  void set_tracer(obs::Tracer* tracer);

  // Blocks until no background checkpoint is queued or running. Tests and
  // shutdown sequencing use this; ~HistoryStore calls it implicitly.
  void WaitForIdle();

  HistoryStoreStats stats() const;
  // OK, or the first journaling failure since construction.
  util::Status last_error() const;

  const HistoryStoreOptions& options() const { return options_; }

  // "<wal_path>.fold": the first rotated-out WAL segment's name. Later
  // segments queued while a fold is in flight are "<wal_path>.fold.<N>"
  // with N increasing in rotation order.
  std::string fold_path() const { return options_.wal_path + ".fold"; }

  // Cap on simultaneously existing fold segments; past it, a tripping
  // insert stops rotating and the active WAL grows instead.
  static constexpr size_t kMaxFoldSegments = 8;

 private:
  explicit HistoryStore(HistoryStoreOptions options);

  util::Status CheckpointLocked(const access::HistoryCache& cache);
  // Rotates the active WAL out to a fresh fold segment and pins a cache
  // export for the checkpoint thread (superseding any queued fold). Called
  // under mu_ by OnCacheInsert.
  void RequestBackgroundFold(const access::HistoryCache& cache);
  void CheckpointThreadLoop();
  // Adopts fold segments left on disk by an interrupted background
  // checkpoint, in rotation order. Called at Open.
  void AdoptFoldSegments();
  // The name the next rotation parks the active WAL under.
  std::string NextFoldSegmentPath();
  // Deletes the oldest `count` fold segments (their records are covered by
  // the snapshot just written). Called under mu_.
  void RetireFoldSegments(size_t count);
  void SyncFoldStats();
  // `dropped_record` selects which failure counter the error lands in:
  // append_failures (a journal record was lost) vs checkpoint_failures (a
  // fold attempt failed, durability intact).
  void RecordError(const util::Status& status, bool dropped_record);

  HistoryStoreOptions options_;
  std::unique_ptr<WalWriter> wal_;  // null when the WAL is disabled
  obs::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;  // "store" track when tracer_ set

  mutable std::mutex mu_;  // serializes appends, checkpoints, stats
  HistoryStoreStats stats_;
  util::Status last_error_;

  // Background-checkpoint state, all under mu_. Segment coverage is
  // tracked with MONOTONE counters (segments ever rotated / ever retired)
  // rather than list sizes, so a fold retires exactly the segments its
  // export covers even when earlier folds shrank the list — or new
  // rotations grew it — while the export waited or wrote.
  std::vector<std::string> fold_segments_;  // on disk, oldest first
  uint64_t rotated_total_ = 0;    // segments ever pushed onto the list
  uint64_t retired_total_ = 0;    // segments ever retired off its front
  uint64_t next_fold_seq_ = 2;    // suffix for the next numbered segment
  bool ckpt_inflight_ = false;    // image pinned or snapshot being written
  bool stopping_ = false;
  ExportedCacheImage ckpt_image_;   // the in-flight fold's pinned export
  uint64_t ckpt_covers_ = 0;        // export covers rotations < this count
  bool queued_fold_ = false;        // a newer export awaits the thread
  ExportedCacheImage queued_image_;
  uint64_t queued_covers_ = 0;
  std::condition_variable ckpt_cv_;  // wakes the checkpoint thread
  std::condition_variable idle_cv_;  // wakes WaitForIdle / Checkpoint
  std::thread checkpoint_thread_;    // joined by the destructor
};

}  // namespace histwalk::store

#endif  // HISTWALK_STORE_HISTORY_STORE_H_
