#ifndef HISTWALK_OBS_HTTP_EXPORTER_H_
#define HISTWALK_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "obs/registry.h"
#include "util/socket.h"
#include "util/status.h"

// Minimal embedded HTTP/1.1 endpoint exposing the metrics registry while
// a crawl runs — curl / Prometheus instead of a post-mortem scrape file.
//
// Routes:
//   GET /metrics       Prometheus text exposition (Registry::Scrape)
//   GET /metrics.json  the same scrape as JSON
//   GET /healthz       "ok" liveness probe
//   GET /runs          JSON array of live run/session progress snapshots
//                      (whatever the injected runs_json provider reports;
//                      "[]" when none is wired)
//
// Scope, deliberately small: one accept-loop thread serving connections
// serially, Connection: close on every response, GET only, loopback only
// (util::TcpListener binds 127.0.0.1). That is exactly what a scrape
// endpoint needs and nothing a public service would — but the
// socket/HTTP plumbing is the substrate ROADMAP item 1's RPC front ends
// will build on.
//
// Every response is computed per request, so a scrape observes the same
// registry state any in-process Scrape() would — including collector-
// exported families (hw_cache_*, hw_prof_*, hw_est_*). Serving reads
// wall-clock-ordered state and so is not deterministic; nothing it does
// feeds back into the walk (api_equivalence_test pins that).

namespace histwalk::obs {

struct TelemetryServerOptions {
  // TCP port on 127.0.0.1; 0 asks the kernel for an ephemeral port (read
  // the outcome from TelemetryServer::port() — tests and --serve=0 do).
  uint16_t port = 0;
  // Registry to scrape; null falls back to Registry::Global().
  Registry* registry = nullptr;
  // Provider for the /runs body (a complete JSON value). Called on the
  // serving thread, so it must be thread-safe; null serves "[]".
  std::function<std::string()> runs_json;
};

class TelemetryServer {
 public:
  // Binds + starts the serving thread; Unavailable if the port is taken.
  static util::Result<std::unique_ptr<TelemetryServer>> Start(
      TelemetryServerOptions options);

  // Stops accepting, joins the serving thread. In-flight response writes
  // finish first (they are short).
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // The actual bound port (resolves port=0 to the kernel's pick).
  uint16_t port() const { return listener_.port(); }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  explicit TelemetryServer(TelemetryServerOptions options,
                           util::TcpListener listener);

  void ServeLoop();
  void HandleConnection(util::TcpStream stream);

  TelemetryServerOptions options_;
  util::TcpListener listener_;
  std::atomic<uint64_t> requests_served_{0};
  std::thread serve_thread_;  // last member: joins before teardown
};

}  // namespace histwalk::obs

#endif  // HISTWALK_OBS_HTTP_EXPORTER_H_
