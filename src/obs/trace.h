#ifndef HISTWALK_OBS_TRACE_H_
#define HISTWALK_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

// Deterministic tracer emitting Chrome trace-event JSON (load the file at
// ui.perfetto.dev or chrome://tracing).
//
// Determinism is the point: events are stamped with the *simulated*
// LatencyModel wire clock (injected via Options::clock), not wall time,
// and every event lands on a logical TRACK — "walker 0", "pipeline",
// "wire", "store" — never an OS thread id. Each track buffers its own
// events in append order, tracks are registered in a deterministic order
// by single-threaded wiring code, and serialization is a fixed-key-order
// hand-rolled writer. The result: for a serial request stream (one
// walker), the emitted bytes are identical whatever thread pool executed
// it — pinned by test and by scripts/trace_demo.sh across --threads=1/8.
// Multi-walker traces are valid Chrome JSON but not byte-stable, since
// hit/miss attribution depends on scheduling.
//
// Span kinds map to Chrome phases: RAII SpanGuard emits 'B'/'E' pairs,
// Instant emits 'i', Complete emits 'X' with an explicit ts + dur (used
// for wire requests, whose issue/complete times come from the
// LatencyModel schedule, and for pipeline batches, which would otherwise
// nest confusingly across workers).
//
// When no clock is injected (inline runs with no wire), each track stamps
// a per-track logical tick instead, which is equally deterministic.
// Options::wall_clock additionally records steady_clock microseconds into
// each event's args — useful for profiling real time, and explicitly
// waives byte-determinism.
//
// Instrumentation sites use the macros at the bottom so a null tracer
// costs one branch and HISTWALK_DISABLE_TRACING compiles the seam out
// entirely. Event names must be string literals (stored as const char*).

namespace histwalk::obs {

class Tracer {
 public:
  struct Options {
    // Simulated clock (microseconds); typically RemoteBackend's
    // sim_now_us. Null: per-track logical ticks.
    std::function<uint64_t()> clock;
    // Record steady_clock wall microseconds into event args. Breaks
    // byte-determinism across runs; off by default.
    bool wall_clock = false;
  };

  Tracer();
  explicit Tracer(Options options);

  // Find-or-create the track named `name`; returns a stable track id.
  // Call from deterministic single-threaded wiring code (Build, run
  // start) so ids are reproducible.
  uint32_t RegisterTrack(const std::string& name);

  bool has_clock() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<bool>(options_.clock);
  }
  // Wires the simulated clock after construction (SamplerBuilder::Build
  // does this once the RemoteBackend exists); call before any events.
  // Passing null clears it — ~Sampler does this when it installed a clock
  // reading its own wire, so later events fall back to logical ticks
  // instead of calling a destroyed backend.
  void set_clock(std::function<uint64_t()> clock);

  // `args`, where taken, is a pre-rendered JSON object body WITHOUT the
  // surrounding braces, e.g. R"("node":42,"shard":3)"; empty = no args.
  void Begin(uint32_t track, const char* name, std::string args = "");
  void End(uint32_t track, const char* name);
  void Instant(uint32_t track, const char* name, std::string args = "");
  void Complete(uint32_t track, const char* name, uint64_t ts_us,
                uint64_t dur_us, std::string args = "");
  // Counter sample ('C'): Perfetto renders the series `name` on `track`
  // as a step chart against the trace clock. Used by ProgressTracker to
  // plot the running estimate / CI half-width against the wire clock.
  void Counter(uint32_t track, const char* name, double value);

  // Current simulated time (0 without a clock) — for callers computing
  // Complete() durations.
  uint64_t NowUs() const;

  uint64_t num_events() const;

  // {"traceEvents":[...]} with per-track thread_name metadata first, then
  // each track's events in append order, tracks in ascending id order.
  // Fixed key order, integer timestamps: deterministic byte-for-byte.
  std::string ToChromeJson() const;
  util::Status WriteTo(const std::string& path) const;

 private:
  struct Event {
    char ph;           // 'B', 'E', 'i', 'X', 'C'
    const char* name;  // literal
    uint64_t ts = 0;
    uint64_t dur = 0;  // 'X' only
    std::string args;
  };
  struct Track {
    std::string name;
    mutable std::mutex mu;
    std::vector<Event> events;
    uint64_t ticks = 0;  // logical clock when no sim clock is injected
  };

  Track& track(uint32_t id) const;
  void Append(uint32_t track, Event event);

  Options options_;
  mutable std::mutex mu_;  // guards tracks_ growth + by_name_
  std::vector<std::unique_ptr<Track>> tracks_;
  std::map<std::string, uint32_t> by_name_;
};

// RAII 'B'/'E' span; no-op on null tracer.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, uint32_t track, const char* name)
      : tracer_(tracer), track_(track), name_(name) {
    if (tracer_ != nullptr) tracer_->Begin(track_, name_);
  }
  SpanGuard(Tracer* tracer, uint32_t track, const char* name,
            std::string args)
      : tracer_(tracer), track_(track), name_(name) {
    if (tracer_ != nullptr) tracer_->Begin(track_, name_, std::move(args));
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->End(track_, name_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_;
  uint32_t track_;
  const char* name_;
};

}  // namespace histwalk::obs

#ifndef HISTWALK_DISABLE_TRACING

#define HW_TRACE_CONCAT_INNER_(a, b) a##b
#define HW_TRACE_CONCAT_(a, b) HW_TRACE_CONCAT_INNER_(a, b)

// Scoped span on `track`; `tracer` may be null (one-branch no-op).
#define HW_TRACE_SPAN(tracer, track, name)                            \
  ::histwalk::obs::SpanGuard HW_TRACE_CONCAT_(hw_trace_span_, __LINE__)( \
      (tracer), (track), (name))
// The ternary keeps the args expression unevaluated on a null tracer (no
// string building on the untraced hot path).
#define HW_TRACE_SPAN_ARGS(tracer, track, name, args)                 \
  ::histwalk::obs::SpanGuard HW_TRACE_CONCAT_(hw_trace_span_, __LINE__)( \
      (tracer), (track), (name),                                      \
      (tracer) != nullptr ? (args) : ::std::string())
// Instant event; the args expression is not evaluated on a null tracer.
#define HW_TRACE_INSTANT(tracer, track, name)                  \
  do {                                                         \
    if ((tracer) != nullptr) (tracer)->Instant((track), (name)); \
  } while (0)
#define HW_TRACE_INSTANT_ARGS(tracer, track, name, args)               \
  do {                                                                 \
    if ((tracer) != nullptr) (tracer)->Instant((track), (name), (args)); \
  } while (0)

#else  // HISTWALK_DISABLE_TRACING

#define HW_TRACE_SPAN(tracer, track, name) ((void)0)
#define HW_TRACE_SPAN_ARGS(tracer, track, name, args) ((void)0)
#define HW_TRACE_INSTANT(tracer, track, name) ((void)0)
#define HW_TRACE_INSTANT_ARGS(tracer, track, name, args) ((void)0)

#endif  // HISTWALK_DISABLE_TRACING

#endif  // HISTWALK_OBS_TRACE_H_
