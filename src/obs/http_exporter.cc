#include "obs/http_exporter.h"

#include <utility>

namespace histwalk::obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

struct Response {
  int status = 200;
  const char* reason = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

std::string RenderResponse(const Response& r) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(r.status);
  out += ' ';
  out += r.reason;
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(r.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += r.body;
  return out;
}

// Request line only ("GET /metrics HTTP/1.1"); headers are read (so the
// client can finish writing) but ignored.
bool ParseRequestLine(const std::string& request, std::string& method,
                      std::string& target) {
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return false;
  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  method = line.substr(0, sp1);
  target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Query strings are accepted and ignored (curl 'http://.../metrics?x').
  const size_t query = target.find('?');
  if (query != std::string::npos) target = target.substr(0, query);
  return true;
}

}  // namespace

util::Result<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    TelemetryServerOptions options) {
  auto listener = util::TcpListener::Listen(options.port);
  if (!listener.ok()) return listener.status();
  return std::unique_ptr<TelemetryServer>(
      new TelemetryServer(std::move(options), *std::move(listener)));
}

TelemetryServer::TelemetryServer(TelemetryServerOptions options,
                                 util::TcpListener listener)
    : options_(std::move(options)), listener_(std::move(listener)) {
  serve_thread_ = std::thread([this] { ServeLoop(); });
}

TelemetryServer::~TelemetryServer() {
  listener_.Shutdown();  // wakes the blocked Accept with Unavailable
  if (serve_thread_.joinable()) serve_thread_.join();
}

void TelemetryServer::ServeLoop() {
  for (;;) {
    auto stream = listener_.Accept();
    if (!stream.ok()) return;  // Shutdown() — or a fatal listener error
    HandleConnection(*std::move(stream));
  }
}

void TelemetryServer::HandleConnection(util::TcpStream stream) {
  // Read until the end of the request head; GETs have no body.
  std::string request;
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() > kMaxRequestBytes) return;  // oversized: drop
    auto n = stream.RecvSome(request);
    if (!n.ok() || *n == 0) return;  // peer gone mid-request
  }

  Response response;
  std::string method;
  std::string target;
  if (!ParseRequestLine(request, method, target)) {
    response.status = 400;
    response.reason = "Bad Request";
    response.body = "bad request\n";
  } else if (method != "GET") {
    response.status = 405;
    response.reason = "Method Not Allowed";
    response.body = "only GET is served\n";
  } else {
    Registry& registry =
        options_.registry != nullptr ? *options_.registry : Registry::Global();
    if (target == "/metrics") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = registry.Scrape().ToPrometheusText();
    } else if (target == "/metrics.json") {
      response.content_type = "application/json";
      response.body = registry.Scrape().ToJson();
    } else if (target == "/healthz") {
      response.body = "ok\n";
    } else if (target == "/runs") {
      response.content_type = "application/json";
      response.body = options_.runs_json ? options_.runs_json() : "[]";
    } else {
      response.status = 404;
      response.reason = "Not Found";
      response.body = "routes: /metrics /metrics.json /healthz /runs\n";
    }
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  // Best-effort: a vanished client is the client's problem.
  (void)stream.SendAll(RenderResponse(response));
}

}  // namespace histwalk::obs
