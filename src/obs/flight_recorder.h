#ifndef HISTWALK_OBS_FLIGHT_RECORDER_H_
#define HISTWALK_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <vector>

// Bounded ring of recent miss-path resolutions — the post-hoc "why was
// this tenant slow / refused?" answer that doesn't need a full trace file.
// Cache HITS are deliberately not recorded: the hit path is the hot path,
// and a hit needs no explanation. What lands in the ring is every miss's
// outcome: wire fetch, store-tier warm hit, singleflight join, budget
// refusal, or error, each stamped with the simulated clock when one is
// wired. RunHandle::Report and the service's SessionReport surface a
// snapshot of the ring.

namespace histwalk::obs {

enum class FlightEventKind : uint8_t {
  kWireFetch,         // miss resolved by a backend fetch (sync or batched)
  kStoreHit,          // miss resolved by the durable-history read tier
  kSingleflightJoin,  // miss joined another walker's in-flight fetch
  kBudgetRefusal,     // miss refused by the group/tenant query budget
  kError,             // miss path failed (backend or pipeline error)
};

inline std::string_view FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kWireFetch: return "wire_fetch";
    case FlightEventKind::kStoreHit: return "store_hit";
    case FlightEventKind::kSingleflightJoin: return "singleflight_join";
    case FlightEventKind::kBudgetRefusal: return "budget_refusal";
    case FlightEventKind::kError: return "error";
  }
  return "unknown";
}

struct FlightEvent {
  uint64_t node = 0;
  uint32_t actor = 0;  // view id within the group (walker / session view)
  FlightEventKind kind = FlightEventKind::kWireFetch;
  uint64_t start_us = 0;  // clock at the miss
  uint64_t end_us = 0;    // clock at resolution
};

// Owning snapshot for reports; `dropped` says how much history the ring
// overwrote, so "the ring only shows the tail" is visible.
struct FlightLog {
  std::vector<FlightEvent> events;  // oldest -> newest
  uint64_t total_recorded = 0;
  uint64_t dropped = 0;
};

class FlightRecorder {
 public:
  // capacity 0 disables recording entirely. `clock` stamps start/end
  // microseconds (typically the simulated wire clock); null leaves 0.
  explicit FlightRecorder(size_t capacity,
                          std::function<uint64_t()> clock = nullptr)
      : clock_(std::move(clock)), capacity_(capacity) {
    ring_.reserve(capacity_);
  }
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  uint64_t NowUs() const { return clock_ ? clock_() : 0; }
  size_t capacity() const { return capacity_; }

  void Record(FlightEvent event) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[next_] = event;
      next_ = (next_ + 1) % capacity_;
    }
  }

  // Oldest -> newest copy of the ring.
  std::vector<FlightEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FlightEvent> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    return out;
  }

  uint64_t total_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_ - ring_.size();
  }

  FlightLog TakeLog() const {
    FlightLog log;
    log.events = Snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    log.total_recorded = total_;
    log.dropped = total_ - ring_.size();
    return log;
  }

 private:
  std::function<uint64_t()> clock_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;
  size_t next_ = 0;  // overwrite cursor == oldest entry once full
  uint64_t total_ = 0;
};

}  // namespace histwalk::obs

#endif  // HISTWALK_OBS_FLIGHT_RECORDER_H_
