#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace histwalk::obs {

namespace internal {

size_t ThreadStripe(size_t stripes) {
  static std::atomic<size_t> next{0};
  thread_local size_t assigned =
      next.fetch_add(1, std::memory_order_relaxed);
  return assigned % stripes;
}

}  // namespace internal

// ---- ScrapeResult -----------------------------------------------------------

namespace {

bool SampleBefore(const Sample& a, const Sample& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

std::string RenderName(const Sample& s, const char* suffix = "",
                       const std::string& extra_label = "") {
  std::string out = s.name;
  out += suffix;
  if (!s.labels.empty() || !extra_label.empty()) {
    out += '{';
    out += s.labels;
    if (!s.labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  return out;
}

// Scalar rendering shared by both expositions: integers verbatim,
// double-valued gauges via %.9g (deterministic, locale-free).
std::string RenderScalar(const Sample& s) {
  if (!s.is_double) return std::to_string(s.value);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", s.dvalue);
  return std::string(buf);
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // control chars never appear in metric names/labels
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderLabel(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  out += EscapeLabelValue(value);
  out += '"';
  return out;
}

const Sample* ScrapeResult::Find(std::string_view name,
                                 std::string_view labels) const {
  for (const Sample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

int64_t ScrapeResult::Value(std::string_view name,
                            std::string_view labels) const {
  const Sample* s = Find(name, labels);
  if (s == nullptr) return 0;
  if (s->kind == SampleKind::kHistogram) {
    return static_cast<int64_t>(s->hist.count);
  }
  if (s->is_double) return static_cast<int64_t>(s->dvalue);
  return s->value;
}

double ScrapeResult::DValue(std::string_view name,
                            std::string_view labels) const {
  const Sample* s = Find(name, labels);
  if (s == nullptr) return 0.0;
  if (s->kind == SampleKind::kHistogram) {
    return static_cast<double>(s->hist.count);
  }
  return s->is_double ? s->dvalue : static_cast<double>(s->value);
}

std::string ScrapeResult::ToPrometheusText() const {
  std::string out;
  std::string last_typed;
  for (const Sample& s : samples) {
    if (s.name != last_typed) {
      out += "# TYPE ";
      out += s.name;
      out += ' ';
      out += s.kind == SampleKind::kCounter   ? "counter"
             : s.kind == SampleKind::kGauge   ? "gauge"
                                              : "histogram";
      out += '\n';
      last_typed = s.name;
    }
    if (s.kind != SampleKind::kHistogram) {
      out += RenderName(s);
      out += ' ';
      out += RenderScalar(s);
      out += '\n';
      continue;
    }
    // Cumulative le buckets at the log2 upper bounds, then +Inf, _sum,
    // _count, _max — close enough to native Prometheus histograms for any
    // text-format consumer, exact for ours. The top bucket is the clamp
    // bucket (BucketOf folds everything above its bound into it), so a
    // finite le line there would claim a bound its observations can
    // exceed; it renders only under le="+Inf".
    uint64_t cumulative = 0;
    for (size_t b = 0; b + 1 < Log2Histogram::kBuckets; ++b) {
      cumulative += s.hist.buckets[b];
      if (s.hist.buckets[b] == 0 && b != 0) continue;  // keep output compact
      out += RenderName(
          s, "_bucket",
          "le=\"" + std::to_string(Log2Histogram::BucketUpperBound(b)) +
              "\"");
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += RenderName(s, "_bucket", "le=\"+Inf\"");
    out += ' ';
    out += std::to_string(s.hist.count);
    out += '\n';
    out += RenderName(s, "_sum");
    out += ' ';
    out += std::to_string(s.hist.sum);
    out += '\n';
    out += RenderName(s, "_count");
    out += ' ';
    out += std::to_string(s.hist.count);
    out += '\n';
    out += RenderName(s, "_max");
    out += ' ';
    out += std::to_string(s.hist.max);
    out += '\n';
  }
  return out;
}

std::string ScrapeResult::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const Sample& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, s.name);
    out += "\",\"labels\":\"";
    AppendJsonEscaped(out, s.labels);
    out += "\",\"kind\":\"";
    out += s.kind == SampleKind::kCounter   ? "counter"
           : s.kind == SampleKind::kGauge   ? "gauge"
                                            : "histogram";
    out += '"';
    if (s.kind == SampleKind::kHistogram) {
      out += ",\"count\":" + std::to_string(s.hist.count);
      out += ",\"sum\":" + std::to_string(s.hist.sum);
      out += ",\"max\":" + std::to_string(s.hist.max);
      out += ",\"p50\":" + std::to_string(s.hist.Quantile(0.5));
      out += ",\"p99\":" + std::to_string(s.hist.Quantile(0.99));
      out += ",\"buckets\":[";
      for (size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
        if (b != 0) out += ',';
        out += std::to_string(s.hist.buckets[b]);
      }
      out += ']';
    } else {
      out += ",\"value\":" + RenderScalar(s);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

// ---- Registry ---------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* global = new Registry();  // intentionally leaked
  return *global;
}

Counter* Registry::counter(std::string_view name, std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key(std::string(name), std::string(labels))];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(std::string_view name, std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[Key(std::string(name), std::string(labels))];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(std::string_view name,
                               std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[Key(std::string(name), std::string(labels))];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void Registry::CollectorHandle::reset() {
  if (registry_ == nullptr) return;
  // collector_mu_ first (same order as Scrape): a scrape in flight may
  // still be invoking this collector, and taking the scrape lock waits it
  // out — after reset() returns the callback can never run again.
  std::lock_guard<std::mutex> scrape_lock(registry_->collector_mu_);
  std::lock_guard<std::mutex> lock(registry_->mu_);
  registry_->collectors_.erase(id_);
  registry_ = nullptr;
}

Registry::CollectorHandle Registry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(collector));
  return CollectorHandle(this, id);
}

ScrapeResult Registry::Scrape() const {
  ScrapeResult result;
  // Collectors must NOT run under mu_: their bodies read component stats
  // under component locks, and those components resolve instruments (which
  // takes mu_) on paths that hold the same component lock — running them
  // here under mu_ closes a deadlock cycle (e.g. service Submit holds the
  // service mutex -> mu_, while a scrape would hold mu_ -> service mutex).
  // So: snapshot the instruments and the collector list under mu_, then
  // invoke the collectors holding only collector_mu_, which reset() also
  // takes so unregistration still waits out an in-flight scrape.
  std::lock_guard<std::mutex> scrape_lock(collector_mu_);
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, counter] : counters_) {
      Sample s;
      s.name = key.first;
      s.labels = key.second;
      s.kind = SampleKind::kCounter;
      s.value = static_cast<int64_t>(counter->Value());
      result.samples.push_back(std::move(s));
    }
    for (const auto& [key, gauge] : gauges_) {
      Sample s;
      s.name = key.first;
      s.labels = key.second;
      s.kind = SampleKind::kGauge;
      s.value = gauge->Value();
      result.samples.push_back(std::move(s));
    }
    for (const auto& [key, histogram] : histograms_) {
      Sample s;
      s.name = key.first;
      s.labels = key.second;
      s.kind = SampleKind::kHistogram;
      s.hist = histogram->Snapshot();
      result.samples.push_back(std::move(s));
    }
    collectors.reserve(collectors_.size());
    for (const auto& [id, collector] : collectors_) {
      collectors.push_back(collector);
    }
  }
  for (const Collector& collector : collectors) {
    collector(result.samples);
  }
  std::sort(result.samples.begin(), result.samples.end(), SampleBefore);
  return result;
}

util::Status Registry::WriteScrape(const std::string& path) const {
  const ScrapeResult scrape = Scrape();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::Unavailable("cannot open scrape output: " + path);
  }
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  out << (json ? scrape.ToJson() : scrape.ToPrometheusText());
  out.flush();
  if (!out) {
    return util::Status::DataLoss("short write to scrape output: " + path);
  }
  return util::Status::Ok();
}

}  // namespace histwalk::obs
