#include "obs/profiler.h"

#include <utility>

namespace histwalk::obs {

thread_local ProfScope* ProfScope::tls_current_ = nullptr;

Profiler& Profiler::Global() {
  static Profiler* const global = new Profiler();  // intentionally leaked
  return *global;
}

ProfSite* Profiler::site(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(name), std::make_unique<ProfSite>(this))
             .first;
  }
  return it->second.get();
}

std::vector<Profiler::SiteSnapshot> Profiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteSnapshot> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    SiteSnapshot s;
    s.name = name;
    for (const ProfSite::Cell& cell : site->cells_) {
      s.count += cell.count.load(std::memory_order_relaxed);
      s.total_ns += cell.total_ns.load(std::memory_order_relaxed);
      s.self_ns += cell.self_ns.load(std::memory_order_relaxed);
      uint64_t cell_max = cell.max_ns.load(std::memory_order_relaxed);
      if (cell_max > s.max_ns) s.max_ns = cell_max;
      for (size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
        s.hist.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
    }
    s.hist.count = s.count;
    s.hist.sum = s.total_ns;
    s.hist.max = s.max_ns;
    out.push_back(std::move(s));
  }
  return out;  // map iteration order: already sorted by name
}

void Profiler::AppendSamples(std::vector<Sample>& out) const {
  for (SiteSnapshot& site : Snapshot()) {
    const std::string label = RenderLabel("site", site.name);
    Sample hist;
    hist.name = "hw_prof_scope_ns";
    hist.labels = label;
    hist.kind = SampleKind::kHistogram;
    hist.hist = site.hist;
    out.push_back(std::move(hist));
    Sample self;
    self.name = "hw_prof_self_ns_total";
    self.labels = label;
    self.kind = SampleKind::kCounter;
    self.value = static_cast<int64_t>(site.self_ns);
    out.push_back(std::move(self));
  }
}

}  // namespace histwalk::obs
