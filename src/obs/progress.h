#ifndef HISTWALK_OBS_PROGRESS_H_
#define HISTWALK_OBS_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/rw_spinlock.h"

// Streaming convergence telemetry for an in-flight ensemble run.
//
// Post-hoc diagnostics (estimate/variance.h batch means, diagnostics.h
// Geweke z) answer "how good was the estimate" only after Wait()
// returns. ProgressTracker answers it *while the walk is running*: each
// walker feeds its visited (node, degree) stream into a private
// accumulator on the step hot path, and any thread can fold the
// published per-walker states into an ensemble ProgressSnapshot — running
// estimate, batch-means standard error, CI half-width at a configurable
// confidence level, per-walker effective sample size, and cross-walker
// Gelman–Rubin R-hat — without blocking the walkers.
//
// Concurrency contract, chosen to keep the determinism guarantees of the
// walk itself intact:
//  * OnStep(walker, ...) is single-writer per walker index: only the
//    thread driving that walker may call it. It touches walker-private
//    state only — no shared atomics, no locks — except once every
//    `flush_interval` own-steps, when it copies the accumulator into a
//    per-walker publication slot under a tiny spinlock and runs one
//    aggregation pass (stop-rule evaluation + optional tracer counters).
//  * Snapshot() may be called from any thread at any time. It reads each
//    publication slot under a shared lock and folds in walker-index
//    order, so the floating-point reduction order is fixed. Snapshots
//    are monotone in total_steps.
//  * ShouldStop() is a relaxed atomic load — cheap enough for the step
//    loop. The stop flag latches once the pooled CI half-width reaches
//    `stop_at_ci_half_width` with at least `min_stop_batches` closed
//    batches pooled (guarding against a lucky narrow CI from a handful
//    of early batches).
//
// Observation is pure: it issues no graph fetches and consumes no RNG,
// so enabling progress cannot perturb walk traces, per-walker
// QueryStats, or bills. Adaptive stopping *does* change where walks end
// (that is its purpose), and the cut point depends on thread
// interleaving — byte-identical traces are only guaranteed with the stop
// rule disabled.
//
// Estimator shape: the tracker mirrors the Hansen–Hurwitz ratio
// estimator used by estimate/estimators.h. With `degree_weighted` set
// (stationary distribution ∝ degree: SRW and friends), each step
// contributes weight w = 1/degree and value f(node, degree); the running
// estimate is Σw·f / Σw. With it clear (uniform stationary: MHRW), w = 1
// and the estimate is the plain mean. Batch means follow the paper's
// Definition 3, computed online: per walker, consecutive spans of
// `batch_target` steps close into (Σw, Σw·f) pairs; when the fixed slot
// budget fills, adjacent batches pair-merge and the target doubles, so
// memory stays O(64) per walker while batch size grows with the run —
// the standard scheme for consistent asymptotic variance online.

namespace histwalk::obs {

class Tracer;

// Inverse standard normal CDF (Acklam's rational approximation,
// |relative error| < 1.2e-9). Exposed for tests; p in (0, 1).
double NormalQuantile(double p);

struct ProgressOptions {
  uint32_t num_walkers = 0;
  // Own-steps between a walker's publications (slot copy + aggregation
  // pass). Also the granularity at which the stop rule is evaluated.
  uint32_t flush_interval = 64;
  // First batch closes after this many steps; doubles as slots fill.
  uint32_t initial_batch_size = 32;
  // Two-sided confidence level for ci_half_width, in (0, 1).
  double confidence = 0.95;

  // Estimand wiring. With has_estimand false the tracker only counts
  // steps/queries (no moments, no CI, no stop rule).
  bool has_estimand = false;
  // True: importance weight w = 1/degree (degree-proportional stationary
  // law). False: w = 1 (uniform stationary law, e.g. MHRW).
  bool degree_weighted = true;
  // Per-visit value f(node, degree); null means f = degree (the
  // average-degree estimand).
  std::function<double(uint64_t node, uint32_t degree)> value_fn;

  // Adaptive stopping: latch ShouldStop() once ci_half_width <= this.
  // 0 disables the rule.
  double stop_at_ci_half_width = 0.0;
  // Minimum pooled closed batches before the stop rule may fire.
  uint32_t min_stop_batches = 16;

  // Optional environment probes folded into snapshots (never into the
  // stop rule, which must stay a pure function of the walk stream).
  // Both may be dropped mid-run via DetachCallbacks().
  std::function<uint64_t()> charged_fn;  // ensemble charged queries
  std::function<uint64_t()> clock_fn;    // simulated wire clock, us

  // Optional counter track: each aggregation pass emits 'C' events
  // (estimate, ci_half_width) so Perfetto shows the CI shrinking against
  // the wire clock. The track is registered at tracker construction.
  Tracer* tracer = nullptr;
};

struct WalkerProgress {
  uint64_t steps = 0;
  uint64_t unique_queries = 0;
  bool has_estimate = false;
  double estimate = 0.0;
  // Effective sample size: steps / (asymptotic var / iid var), from this
  // walker's own closed batches. 0 until two batches close. May exceed
  // steps for super-efficient chains (the paper's CNRW Theorem 2).
  double ess = 0.0;
};

struct ProgressSnapshot {
  uint64_t total_steps = 0;
  uint64_t unique_queries = 0;   // summed over walkers
  uint64_t charged_queries = 0;  // from charged_fn, 0 if none
  uint64_t sim_wall_us = 0;      // from clock_fn, 0 if none
  uint32_t walkers_reporting = 0;

  bool has_estimate = false;
  double estimate = 0.0;
  // Batch-means standard error of the pooled estimate (0 until two
  // closed batches exist), and the derived CI half-width at
  // `confidence`.
  double std_error = 0.0;
  double ci_half_width = 0.0;
  double confidence = 0.0;
  // Summed per-walker effective sample size.
  double ess = 0.0;
  // Gelman–Rubin potential scale reduction across walkers; 0 until two
  // walkers report estimates. Values near 1 indicate the chains agree.
  double r_hat = 0.0;
  uint64_t num_batches = 0;  // pooled closed batches

  bool stop_requested = false;
  std::vector<WalkerProgress> walkers;
};

class ProgressTracker {
 public:
  explicit ProgressTracker(ProgressOptions options);

  // Hot path; single writer per walker index. `unique_queries` is the
  // walker's cumulative unique-query count after this step.
  void OnStep(uint32_t walker, uint64_t node, uint32_t degree,
              uint64_t unique_queries);

  // Publishes the walker's final state (partial batch included in the
  // moment sums, though not as a closed batch) and runs one aggregation
  // pass. Call once per walker when its walk ends, on the walking thread.
  void FinishWalker(uint32_t walker);

  // Relaxed; safe to call every step.
  bool ShouldStop() const {
    return stop_.load(std::memory_order_relaxed);
  }

  // Folds the latest published per-walker states; never blocks walkers
  // beyond their spinlocked slot copies.
  ProgressSnapshot Snapshot() const;

  // Wires (or replaces) the environment probes after construction — the
  // service does this once the session's billing group exists. Null
  // leaves the corresponding probe unchanged.
  void AttachCallbacks(std::function<uint64_t()> charged_fn,
                       std::function<uint64_t()> clock_fn);

  // Freezes charged_queries / sim_wall_us at their current values and
  // drops the probes. Call before the objects they capture die (the
  // service calls this when a session completes, ahead of Detach
  // destroying its group) — the tracker itself may outlive them inside a
  // RunHandle.
  void DetachCallbacks();

  const ProgressOptions& options() const { return options_; }

 private:
  // Closed batch: (Σw, Σw·f) over exactly `batch_target` steps.
  struct Batch {
    double weight = 0.0;
    double weighted_value = 0.0;
  };

  // Everything a walker accumulates; copied wholesale into its slot on
  // publication. Moment sums use w = 1/degree or 1 per the options.
  struct Accum {
    uint64_t steps = 0;
    uint64_t unique_queries = 0;
    double sum_w = 0.0;
    double sum_wf = 0.0;
    double sum_w2 = 0.0;
    double sum_w2f = 0.0;
    double sum_w2f2 = 0.0;
    // Open batch.
    uint64_t batch_len = 0;
    double batch_w = 0.0;
    double batch_wf = 0.0;
    uint64_t batch_target = 0;
    std::vector<Batch> closed;
    uint32_t since_publish = 0;
  };

  struct Walker {
    Accum accum;                       // walker-thread private
    mutable util::RwSpinLock slot_mu;  // guards slot
    Accum slot;                        // last published state
  };

  void Publish(uint32_t walker);
  void Aggregate();
  ProgressSnapshot Fold() const;

  ProgressOptions options_;
  double z_ = 0.0;  // NormalQuantile for the configured confidence
  std::vector<std::unique_ptr<Walker>> walkers_;
  std::atomic<bool> stop_{false};

  // Serializes aggregation passes (stop-rule evaluation + counter
  // emission) so counter events appear in fold order per publisher.
  std::mutex agg_mu_;

  // Guards the probes + their frozen fallbacks.
  mutable std::mutex fns_mu_;
  uint64_t frozen_charged_ = 0;
  uint64_t frozen_sim_wall_us_ = 0;

  uint32_t trace_track_ = 0;
  bool has_trace_track_ = false;
};

}  // namespace histwalk::obs

#endif  // HISTWALK_OBS_PROGRESS_H_
