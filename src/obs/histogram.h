#ifndef HISTWALK_OBS_HISTOGRAM_H_
#define HISTWALK_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

// Compact log2-bucketed histogram, promoted out of net/request_pipeline.h
// so every layer can record latency-ish distributions into the metrics
// registry (obs/registry.h) with the exact machinery the pipeline fairness
// experiments already trust. The unit is whatever the caller records —
// queue waits in drained items, durations in simulated microseconds — the
// bucketing only assumes a non-negative integer.

namespace histwalk::obs {

struct Log2Histogram {
  static constexpr size_t kBuckets = 32;
  // buckets[0] counts values of 0; buckets[i] counts values in
  // [2^(i-1), 2^i) for i >= 1.
  std::array<uint64_t, kBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  static size_t BucketOf(uint64_t value) {
    if (value == 0) return 0;
    size_t bucket = 1;
    while (bucket + 1 < kBuckets && (value >> bucket) != 0) {
      ++bucket;
    }
    return bucket;
  }

  // Inclusive upper bound of bucket b: 0, 1, 3, 7, ..., 2^b - 1.
  static uint64_t BucketUpperBound(size_t bucket) {
    if (bucket == 0) return 0;
    return (uint64_t{1} << bucket) - 1;
  }

  void Record(uint64_t value) {
    ++buckets[BucketOf(value)];
    ++count;
    sum += value;
    if (value > max) max = value;
  }

  // Pointwise accumulation; Quantile/Mean of the merged histogram are the
  // bucket-resolution quantile/mean of the combined population.
  void Merge(const Log2Histogram& other) {
    for (size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
    count += other.count;
    sum += other.sum;
    if (other.max > max) max = other.max;
  }

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Upper bound of the bucket holding the q-quantile (q in [0, 1]); 0 when
  // empty. An upper bound, never an underestimate — safe for starvation
  // assertions.
  uint64_t Quantile(double q) const {
    if (count == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    uint64_t rank =
        static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
    // q=0 must report the minimum observation's bucket, not bucket 0: a
    // rank of 0 would satisfy `seen >= rank` before any bucket is counted.
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += buckets[b];
      if (seen >= rank) return std::min(BucketUpperBound(b), max);
    }
    return max;
  }
};

}  // namespace histwalk::obs

#endif  // HISTWALK_OBS_HISTOGRAM_H_
