#ifndef HISTWALK_OBS_PROFILER_H_
#define HISTWALK_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"
#include "obs/registry.h"

// Wall-clock scoped profiler: the hardware-time counterpart of the
// deterministic sim-clock tracer (obs/trace.h).
//
// The tracer answers "what did the walk do, on the simulated wire clock"
// and is byte-deterministic; the profiler answers "what did the hardware
// do" — real latencies of cache probes, clock-hand sweeps, pipeline
// batches, store appends — and is by construction non-deterministic.
// The two never mix: profiler output flows only into the hw_prof_*
// sample family, never into the walk, so enabling it cannot change a
// trace, stat or bill byte (pinned by api_equivalence_test).
//
// Hot-path contract, mirroring HW_TRACE_SPAN:
//  * HW_PROF_SCOPE("site") compiles out entirely under
//    HISTWALK_DISABLE_PROFILING;
//  * compiled in but disabled (the default), a scope is one relaxed load
//    and a predictable branch — no clock read, no TLS push;
//  * enabled, a scope is two steady_clock reads plus wait-free relaxed
//    fetch_adds on a thread-striped cell (no locks, no allocation).
//
// Sites are identified by string literal and registered find-or-create on
// first use (a function-local static per macro site, so the name lookup
// happens once per call site, never per event). Each site aggregates
// count / total / max and a log2 latency histogram in nanoseconds, plus
// *self time*: total minus time spent in nested HW_PROF_SCOPEs on the
// same thread, which is what bench_report.py --profile ranks sites by.
//
// Export rides the existing Registry pull-collector path: AppendSamples
// emits, per site,
//   hw_prof_scope_ns{site="<name>"}        log2 histogram (count/sum/max)
//   hw_prof_self_ns_total{site="<name>"}   self-time counter
// so a live TelemetryServer scrape shows them next to the deterministic
// families.

namespace histwalk::obs {

class Profiler;

// One instrumented site. Owned by its Profiler; pointers are stable for
// the profiler's lifetime (cache them at wiring time — HW_PROF_SCOPE
// does, via a function-local static).
class ProfSite {
 public:
  explicit ProfSite(const Profiler* owner) : owner_(owner) {}
  ProfSite(const ProfSite&) = delete;
  ProfSite& operator=(const ProfSite&) = delete;

  // True when the owning profiler is currently recording; the one-branch
  // gate ProfScope's constructor takes before touching the clock.
  bool armed() const;

  void Record(uint64_t elapsed_ns, uint64_t self_ns) {
    Cell& cell = cells_[internal::ThreadStripe(kStripes)];
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
    cell.self_ns.fetch_add(self_ns, std::memory_order_relaxed);
    cell.buckets[Log2Histogram::BucketOf(elapsed_ns)].fetch_add(
        1, std::memory_order_relaxed);
    uint64_t prev = cell.max_ns.load(std::memory_order_relaxed);
    while (elapsed_ns > prev &&
           !cell.max_ns.compare_exchange_weak(prev, elapsed_ns,
                                              std::memory_order_relaxed,
                                              std::memory_order_relaxed)) {
    }
  }

 private:
  friend class Profiler;
  static constexpr size_t kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> total_ns{0};
    std::atomic<uint64_t> self_ns{0};
    std::atomic<uint64_t> max_ns{0};
    std::array<std::atomic<uint64_t>, Log2Histogram::kBuckets> buckets{};
  };
  const Profiler* owner_;
  std::array<Cell, kStripes> cells_{};
};

class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Process-wide instance the HW_PROF_SCOPE macro records into. Leaked on
  // purpose (like Registry::Global) so site pointers cached in
  // function-local statics outlive every static destructor.
  static Profiler& Global();

  // Recording is off by default: an instrumented binary pays one branch
  // per scope until something (crawl_cli --serve, a test) turns it on.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Find-or-create; takes the profiler mutex, so call at wiring time (the
  // macro's function-local static) — never per event.
  ProfSite* site(std::string_view name);

  struct SiteSnapshot {
    std::string name;
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t self_ns = 0;
    uint64_t max_ns = 0;
    Log2Histogram hist;  // elapsed ns; count/sum/max folded from stripes
  };

  // Folds every site's stripes; sorted by site name. Concurrent Records
  // are either counted or not (same contract as Counter::Value).
  std::vector<SiteSnapshot> Snapshot() const;

  // Registry-collector payload: hw_prof_scope_ns{site=...} histograms and
  // hw_prof_self_ns_total{site=...} counters for every registered site.
  void AppendSamples(std::vector<Sample>& out) const;

  // steady_clock nanoseconds; the profiler's only time source.
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ProfSite>, std::less<>> sites_;
};

inline bool ProfSite::armed() const { return owner_->enabled(); }

// RAII wall-clock scope. Inactive (null site or disabled profiler) it
// touches nothing; active it reads the clock at both ends and maintains a
// per-thread scope stack so the parent's self-time excludes this scope.
class ProfScope {
 public:
  explicit ProfScope(ProfSite* site) {
    if (site == nullptr || !site->armed()) return;
    site_ = site;
    parent_ = tls_current_;
    tls_current_ = this;
    start_ns_ = Profiler::NowNs();
  }
  ~ProfScope() {
    if (site_ == nullptr) return;
    uint64_t end_ns = Profiler::NowNs();
    uint64_t elapsed = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
    tls_current_ = parent_;
    if (parent_ != nullptr) parent_->child_ns_ += elapsed;
    site_->Record(elapsed,
                  elapsed >= child_ns_ ? elapsed - child_ns_ : 0);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  static thread_local ProfScope* tls_current_;
  ProfSite* site_ = nullptr;
  ProfScope* parent_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t child_ns_ = 0;
};

}  // namespace histwalk::obs

#ifndef HISTWALK_DISABLE_PROFILING

#define HW_PROF_CONCAT_INNER_(a, b) a##b
#define HW_PROF_CONCAT_(a, b) HW_PROF_CONCAT_INNER_(a, b)

// Wall-clock scope recorded into Profiler::Global() under `name` (string
// literal). One relaxed load + branch when profiling is off; compiled out
// entirely under HISTWALK_DISABLE_PROFILING.
#define HW_PROF_SCOPE(name)                                               \
  static ::histwalk::obs::ProfSite* const HW_PROF_CONCAT_(hw_prof_site_,  \
                                                          __LINE__) =     \
      ::histwalk::obs::Profiler::Global().site(name);                     \
  ::histwalk::obs::ProfScope HW_PROF_CONCAT_(hw_prof_scope_, __LINE__)(   \
      HW_PROF_CONCAT_(hw_prof_site_, __LINE__))

#else  // HISTWALK_DISABLE_PROFILING

#define HW_PROF_SCOPE(name) ((void)0)

#endif  // HISTWALK_DISABLE_PROFILING

#endif  // HISTWALK_OBS_PROFILER_H_
