#include "obs/progress.h"

#include <cmath>
#include <shared_mutex>
#include <utility>

#include "obs/trace.h"

namespace histwalk::obs {

namespace {

// Batch slots per walker before adjacent pairs merge and the batch size
// doubles. Even by construction (merge triggers at exactly this count).
constexpr size_t kMaxBatchSlots = 64;

}  // namespace

double NormalQuantile(double p) {
  // Acklam's rational approximation to the inverse normal CDF;
  // |relative error| < 1.2e-9 over (0, 1).
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (!(p > 0.0 && p < 1.0)) {
    return p <= 0.0 ? -HUGE_VAL : HUGE_VAL;
  }
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

ProgressTracker::ProgressTracker(ProgressOptions options)
    : options_(std::move(options)) {
  if (options_.flush_interval == 0) options_.flush_interval = 1;
  if (options_.initial_batch_size == 0) options_.initial_batch_size = 1;
  if (!(options_.confidence > 0.0 && options_.confidence < 1.0)) {
    options_.confidence = 0.95;
  }
  z_ = NormalQuantile(0.5 + options_.confidence / 2.0);
  walkers_.reserve(options_.num_walkers);
  for (uint32_t i = 0; i < options_.num_walkers; ++i) {
    auto walker = std::make_unique<Walker>();
    walker->accum.batch_target = options_.initial_batch_size;
    walker->slot.batch_target = options_.initial_batch_size;
    walkers_.push_back(std::move(walker));
  }
  if (options_.tracer != nullptr) {
    trace_track_ = options_.tracer->RegisterTrack("estimate");
    has_trace_track_ = true;
  }
}

void ProgressTracker::OnStep(uint32_t walker, uint64_t node, uint32_t degree,
                             uint64_t unique_queries) {
  if (walker >= walkers_.size()) return;
  Accum& a = walkers_[walker]->accum;
  ++a.steps;
  a.unique_queries = unique_queries;
  if (options_.has_estimand) {
    const double f = options_.value_fn ? options_.value_fn(node, degree)
                                       : static_cast<double>(degree);
    double w = 1.0;
    if (options_.degree_weighted) {
      w = degree > 0 ? 1.0 / static_cast<double>(degree) : 0.0;
    }
    const double wf = w * f;
    a.sum_w += w;
    a.sum_wf += wf;
    a.sum_w2 += w * w;
    a.sum_w2f += w * wf;
    a.sum_w2f2 += wf * wf;
    ++a.batch_len;
    a.batch_w += w;
    a.batch_wf += wf;
    if (a.batch_len >= a.batch_target) {
      a.closed.push_back(Batch{a.batch_w, a.batch_wf});
      a.batch_len = 0;
      a.batch_w = 0.0;
      a.batch_wf = 0.0;
      if (a.closed.size() == kMaxBatchSlots) {
        // Pair-merge adjacent batches; every closed batch again holds
        // exactly batch_target steps after the doubling.
        size_t out = 0;
        for (size_t j = 0; j + 1 < a.closed.size(); j += 2) {
          a.closed[out++] =
              Batch{a.closed[j].weight + a.closed[j + 1].weight,
                    a.closed[j].weighted_value + a.closed[j + 1].weighted_value};
        }
        a.closed.resize(out);
        a.batch_target *= 2;
      }
    }
  }
  if (++a.since_publish >= options_.flush_interval) {
    a.since_publish = 0;
    Publish(walker);
  }
}

void ProgressTracker::FinishWalker(uint32_t walker) {
  if (walker >= walkers_.size()) return;
  walkers_[walker]->accum.since_publish = 0;
  Publish(walker);
}

void ProgressTracker::Publish(uint32_t walker) {
  Walker& w = *walkers_[walker];
  // Copy outside the spinlock (the batch vector allocates), swap inside;
  // the displaced slot state deallocates after release.
  Accum staged = w.accum;
  {
    std::unique_lock<util::RwSpinLock> lock(w.slot_mu);
    std::swap(w.slot, staged);
  }
  Aggregate();
}

void ProgressTracker::Aggregate() {
  if (!options_.has_estimand) return;
  const bool want_stop = options_.stop_at_ci_half_width > 0.0 &&
                         !stop_.load(std::memory_order_relaxed);
  if (!has_trace_track_ && !want_stop) return;
  std::lock_guard<std::mutex> lock(agg_mu_);
  const ProgressSnapshot snap = Fold();
  if (has_trace_track_ && snap.has_estimate) {
    options_.tracer->Counter(trace_track_, "estimate", snap.estimate);
    if (snap.std_error > 0.0) {
      options_.tracer->Counter(trace_track_, "ci_half_width",
                               snap.ci_half_width);
    }
  }
  if (want_stop && snap.has_estimate && snap.std_error > 0.0 &&
      snap.num_batches >= options_.min_stop_batches &&
      snap.ci_half_width <= options_.stop_at_ci_half_width) {
    stop_.store(true, std::memory_order_release);
  }
}

ProgressSnapshot ProgressTracker::Fold() const {
  ProgressSnapshot snap;
  snap.confidence = options_.confidence;
  snap.walkers.resize(walkers_.size());
  double total_w = 0.0;
  double total_wf = 0.0;
  // Welford folds: pooled closed-batch estimates (for the SE) and chain
  // estimates (for R-hat). Walker-index order fixes the reduction order.
  uint64_t pooled_n = 0;
  double pooled_mean = 0.0;
  double pooled_m2 = 0.0;
  uint32_t chains = 0;
  double chain_mean = 0.0;
  double chain_m2 = 0.0;
  double chain_iid_sum = 0.0;
  double chain_steps_sum = 0.0;
  double ess_total = 0.0;
  for (size_t i = 0; i < walkers_.size(); ++i) {
    Accum a;
    {
      std::shared_lock<util::RwSpinLock> lock(walkers_[i]->slot_mu);
      a = walkers_[i]->slot;
    }
    WalkerProgress& wp = snap.walkers[i];
    wp.steps = a.steps;
    wp.unique_queries = a.unique_queries;
    snap.total_steps += a.steps;
    snap.unique_queries += a.unique_queries;
    if (a.steps > 0) ++snap.walkers_reporting;
    if (!options_.has_estimand || !(a.sum_w > 0.0)) continue;
    const double est = a.sum_wf / a.sum_w;
    wp.has_estimate = true;
    wp.estimate = est;
    total_w += a.sum_w;
    total_wf += a.sum_wf;
    // Delta-method iid variance of one draw's contribution:
    // Var(w·(f − est)) / mean_w², with the cross terms expanded so it
    // falls out of the running sums.
    const double n = static_cast<double>(a.steps);
    const double mean_w = a.sum_w / n;
    double resid = a.sum_w2f2 - 2.0 * est * a.sum_w2f + est * est * a.sum_w2;
    if (resid < 0.0) resid = 0.0;  // rounding guard
    const double iid_var = resid / n / (mean_w * mean_w);
    // Own-batch asymptotic variance (paper Definition 3): batch size
    // times the sample variance of the batch estimates.
    uint64_t batches = 0;
    double batch_mean = 0.0;
    double batch_m2 = 0.0;
    for (const Batch& batch : a.closed) {
      if (!(batch.weight > 0.0)) continue;
      const double be = batch.weighted_value / batch.weight;
      ++batches;
      const double d1 = be - batch_mean;
      batch_mean += d1 / static_cast<double>(batches);
      batch_m2 += d1 * (be - batch_mean);
      ++pooled_n;
      const double d2 = be - pooled_mean;
      pooled_mean += d2 / static_cast<double>(pooled_n);
      pooled_m2 += d2 * (be - pooled_mean);
    }
    if (batches >= 2) {
      const double batch_var = batch_m2 / static_cast<double>(batches - 1);
      const double asym_var =
          static_cast<double>(a.batch_target) * batch_var;
      if (iid_var <= 0.0 || asym_var <= 0.0) {
        wp.ess = n;  // degenerate (constant f): no autocorrelation signal
      } else {
        wp.ess = n * iid_var / asym_var;
      }
    }
    ess_total += wp.ess;
    if (a.steps >= 2) {
      ++chains;
      const double d = est - chain_mean;
      chain_mean += d / static_cast<double>(chains);
      chain_m2 += d * (est - chain_mean);
      chain_iid_sum += iid_var;
      chain_steps_sum += n;
    }
  }
  if (options_.has_estimand && total_w > 0.0) {
    snap.has_estimate = true;
    snap.estimate = total_wf / total_w;
  }
  snap.num_batches = pooled_n;
  snap.ess = ess_total;
  if (pooled_n >= 2) {
    double pooled_var = pooled_m2 / static_cast<double>(pooled_n - 1);
    if (pooled_var < 0.0) pooled_var = 0.0;
    snap.std_error = std::sqrt(pooled_var / static_cast<double>(pooled_n));
    snap.ci_half_width = z_ * snap.std_error;
  }
  if (chains >= 2) {
    const double within = chain_iid_sum / static_cast<double>(chains);
    const double between = chain_m2 / static_cast<double>(chains - 1);
    const double n_bar = chain_steps_sum / static_cast<double>(chains);
    if (within > 0.0) {
      const double var_plus = (n_bar - 1.0) / n_bar * within + between;
      snap.r_hat = std::sqrt(var_plus / within);
    } else {
      snap.r_hat = between == 0.0 ? 1.0 : 0.0;
    }
  }
  return snap;
}

ProgressSnapshot ProgressTracker::Snapshot() const {
  ProgressSnapshot snap = Fold();
  {
    std::lock_guard<std::mutex> lock(fns_mu_);
    snap.charged_queries =
        options_.charged_fn ? options_.charged_fn() : frozen_charged_;
    snap.sim_wall_us = options_.clock_fn ? options_.clock_fn() : frozen_sim_wall_us_;
  }
  snap.stop_requested = stop_.load(std::memory_order_acquire);
  return snap;
}

void ProgressTracker::AttachCallbacks(std::function<uint64_t()> charged_fn,
                                      std::function<uint64_t()> clock_fn) {
  std::lock_guard<std::mutex> lock(fns_mu_);
  if (charged_fn) options_.charged_fn = std::move(charged_fn);
  if (clock_fn) options_.clock_fn = std::move(clock_fn);
}

void ProgressTracker::DetachCallbacks() {
  std::lock_guard<std::mutex> lock(fns_mu_);
  if (options_.charged_fn) {
    frozen_charged_ = options_.charged_fn();
    options_.charged_fn = nullptr;
  }
  if (options_.clock_fn) {
    frozen_sim_wall_us_ = options_.clock_fn();
    options_.clock_fn = nullptr;
  }
}

}  // namespace histwalk::obs
