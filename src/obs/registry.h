#ifndef HISTWALK_OBS_REGISTRY_H_
#define HISTWALK_OBS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "util/rw_spinlock.h"
#include "util/status.h"

// Process-wide metrics registry: named counters, gauges and log2
// histograms, scraped into a Prometheus-style text exposition or JSON.
//
// Design constraints, in order:
//
//  * The hot path is Inc()/Observe() on an instrument POINTER the caller
//    cached at wiring time — one relaxed fetch_add on a thread-striped
//    cell for counters, one short util::RwSpinLock hold on a striped cell
//    for histograms. Name lookup (counter()/gauge()/histogram()) takes the
//    registry mutex and is meant for construction time, never per event.
//  * Instruments are owned by the registry and never move or die before
//    it, so cached pointers stay valid for the registry's lifetime.
//  * Components that already keep their own consistent stats structs
//    (cache, backend, store, service) export them via pull collectors:
//    a callback registered with AddCollector that appends samples during
//    Scrape(). Zero cost between scrapes, and the scrape reuses the exact
//    accounting the components' tests already pin.
//  * Scrape() output is deterministic: samples sorted by (name, labels),
//    fixed serialization, integer values.
//
// Naming convention: hw_<layer>_<name>{label="value"}, e.g.
// hw_access_cache_hits_total, hw_net_pipeline_wait_items. Counters end in
// _total; gauges and histograms do not.

namespace histwalk::obs {

namespace internal {
// Stable small stripe index for the calling thread.
size_t ThreadStripe(size_t stripes);
}  // namespace internal

// Monotone counter with per-thread-striped cells. Inc is wait-free; Value
// sums the cells (each cell is atomically read, so Value never tears, and
// concurrent Incs are either counted or not — same contract as the cache
// stats structs).
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    cells_[internal::ThreadStripe(kStripes)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_{};
};

// Last-write-wins signed gauge.
class Gauge {
 public:
  void Set(int64_t value) { v_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Log2 histogram with striped cells, each under its own RwSpinLock so
// concurrent Observe calls from different threads rarely collide.
// Snapshot merges the cells.
class Histogram {
 public:
  void Observe(uint64_t value) {
    Cell& cell = cells_[internal::ThreadStripe(kStripes)];
    std::lock_guard<util::RwSpinLock> lock(cell.mu);
    cell.h.Record(value);
  }
  Log2Histogram Snapshot() const {
    Log2Histogram merged;
    for (const Cell& cell : cells_) {
      std::shared_lock<util::RwSpinLock> lock(cell.mu);
      merged.Merge(cell.h);
    }
    return merged;
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Cell {
    mutable util::RwSpinLock mu;
    Log2Histogram h;
  };
  std::array<Cell, kStripes> cells_{};
};

enum class SampleKind { kCounter, kGauge, kHistogram };

// Escapes a label VALUE per the Prometheus text exposition format:
// backslash, double-quote and newline render as \\, \" and \n. Everything
// building a Sample::labels body from runtime data (session ids, profiler
// site names, shard indices) must go through this — raw concatenation
// produces an unparseable exposition the moment a value contains one of
// those three characters.
std::string EscapeLabelValue(std::string_view value);

// Renders one label pair `key="value"` with the value escaped; the
// building block for Sample::labels bodies. `key` must be a valid label
// name ([a-zA-Z_][a-zA-Z0-9_]*) — it is not escaped.
std::string RenderLabel(std::string_view key, std::string_view value);

// One scraped metric. `labels` is the rendered label body without braces
// (e.g. `tenant="3"`), empty for unlabelled metrics; label rendering is
// the caller's job and must be deterministic.
struct Sample {
  std::string name;
  std::string labels;
  SampleKind kind = SampleKind::kCounter;
  int64_t value = 0;     // counter / gauge
  // Double-valued gauge (the hw_est_* convergence metrics): when
  // is_double is set the renderers emit dvalue with deterministic %.9g
  // formatting; Value() reports the truncated integer.
  bool is_double = false;
  double dvalue = 0.0;
  Log2Histogram hist;    // histogram
};

struct ScrapeResult {
  std::vector<Sample> samples;  // sorted by (name, labels)

  // First sample with this exact name+labels, or nullptr.
  const Sample* Find(std::string_view name,
                     std::string_view labels = "") const;
  // Scalar value of the sample (histograms report their count); 0 when the
  // sample is absent — callers asserting identities should Find() first if
  // absence must be distinguished from zero.
  int64_t Value(std::string_view name, std::string_view labels = "") const;
  // Like Value() but preserving double-valued gauges exactly.
  double DValue(std::string_view name, std::string_view labels = "") const;

  std::string ToPrometheusText() const;
  std::string ToJson() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Process-wide default instance; components fall back to it when no
  // registry is injected. Never destroyed (leaked on purpose) so cached
  // instrument pointers outlive every static destructor.
  static Registry& Global();

  // Find-or-create. The returned pointer is stable for the registry's
  // lifetime; cache it at wiring time.
  Counter* counter(std::string_view name, std::string_view labels = "");
  Gauge* gauge(std::string_view name, std::string_view labels = "");
  Histogram* histogram(std::string_view name, std::string_view labels = "");

  // Pull collector: appends samples during Scrape. Collectors run OUTSIDE
  // the registry's instrument mutex (so their stats reads may take
  // component locks whose holders themselves resolve instruments), under a
  // dedicated scrape lock. A collector must not call Scrape, AddCollector
  // or CollectorHandle::reset on its own registry — that self-deadlocks.
  using Collector = std::function<void(std::vector<Sample>&)>;

  // RAII registration; destroying (or reset()) unregisters, blocking until
  // any in-flight Scrape is done invoking the collector. The registry must
  // outlive the handle.
  class CollectorHandle {
   public:
    CollectorHandle() = default;
    CollectorHandle(CollectorHandle&& other) noexcept { *this = std::move(other); }
    CollectorHandle& operator=(CollectorHandle&& other) noexcept {
      if (this != &other) {
        reset();
        registry_ = other.registry_;
        id_ = other.id_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    ~CollectorHandle() { reset(); }
    void reset();

   private:
    friend class Registry;
    CollectorHandle(Registry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    Registry* registry_ = nullptr;
    uint64_t id_ = 0;
  };
  CollectorHandle AddCollector(Collector collector);

  // Snapshot of every instrument plus every collector's samples, sorted by
  // (name, labels). Each instrument is internally consistent; cross-metric
  // consistency holds whenever the scraped component is quiescent (the
  // same contract as the per-component stats structs).
  ScrapeResult Scrape() const;

  // Writes ToPrometheusText() — or ToJson() when `path` ends in ".json" —
  // to `path`.
  util::Status WriteScrape(const std::string& path) const;

 private:
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  // Held across Scrape's collector invocations (and by CollectorHandle::
  // reset, so unregistration waits out a scrape). Lock order:
  // collector_mu_ -> mu_; mu_ is never held while a collector runs.
  mutable std::mutex collector_mu_;
  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
  std::map<uint64_t, Collector> collectors_;
  uint64_t next_collector_id_ = 1;
};

}  // namespace histwalk::obs

#endif  // HISTWALK_OBS_REGISTRY_H_
