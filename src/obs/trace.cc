#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "util/check.h"

namespace histwalk::obs {

namespace {

uint64_t WallNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

Tracer::Tracer() : Tracer(Options()) {}

Tracer::Tracer(Options options) : options_(std::move(options)) {}

void Tracer::set_clock(std::function<uint64_t()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.clock = std::move(clock);
}

uint64_t Tracer::NowUs() const {
  std::function<uint64_t()> clock;
  {
    std::lock_guard<std::mutex> lock(mu_);
    clock = options_.clock;
  }
  return clock ? clock() : 0;
}

uint32_t Tracer::RegisterTrack(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(tracks_.size());
  auto track = std::make_unique<Track>();
  track->name = name;
  tracks_.push_back(std::move(track));
  by_name_.emplace(name, id);
  return id;
}

Tracer::Track& Tracer::track(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  HW_CHECK(id < tracks_.size());
  return *tracks_[id];
}

void Tracer::Append(uint32_t track_id, Event event) {
  // Clock reads happen outside the track lock, so a clock callback that
  // ends up back in the tracer can never self-deadlock against a held
  // track mutex. Per-track event order is append order, which for a
  // serial request stream equals program order.
  std::function<uint64_t()> clock;
  {
    std::lock_guard<std::mutex> lock(mu_);
    clock = options_.clock;
  }
  const bool wall = options_.wall_clock;
  const uint64_t wall_us = wall ? WallNowUs() : 0;
  const bool stamp = event.ph != 'X';  // 'X' carries caller timestamps
  const uint64_t clock_us = (stamp && clock) ? clock() : 0;
  Track& t = track(track_id);
  std::lock_guard<std::mutex> lock(t.mu);
  if (stamp) {
    event.ts = clock ? clock_us : t.ticks++;
  }
  if (wall) {
    if (!event.args.empty()) event.args += ',';
    event.args += "\"wall_us\":" + std::to_string(wall_us);
  }
  t.events.push_back(std::move(event));
}

void Tracer::Begin(uint32_t track, const char* name, std::string args) {
  Append(track, Event{'B', name, 0, 0, std::move(args)});
}

void Tracer::End(uint32_t track, const char* name) {
  Append(track, Event{'E', name, 0, 0, {}});
}

void Tracer::Instant(uint32_t track, const char* name, std::string args) {
  Append(track, Event{'i', name, 0, 0, std::move(args)});
}

void Tracer::Complete(uint32_t track, const char* name, uint64_t ts_us,
                      uint64_t dur_us, std::string args) {
  Append(track, Event{'X', name, ts_us, dur_us, std::move(args)});
}

void Tracer::Counter(uint32_t track, const char* name, double value) {
  // %.9g round-trips the values the estimators produce while keeping the
  // rendering deterministic (no locale, no trailing-zero variance).
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"value\":%.9g", value);
  Append(track, Event{'C', name, 0, 0, std::string(buf)});
}

uint64_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& track : tracks_) {
    std::lock_guard<std::mutex> track_lock(track->mu);
    total += track->events.size();
  }
  return total;
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Track-name metadata first, ascending track id.
  for (size_t id = 0; id < tracks_.size(); ++id) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(id);
    out += ",\"args\":{\"name\":\"";
    AppendEscaped(out, tracks_[id]->name);
    out += "\"}}";
  }
  for (size_t id = 0; id < tracks_.size(); ++id) {
    const Track& t = *tracks_[id];
    std::lock_guard<std::mutex> track_lock(t.mu);
    for (const Event& e : t.events) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      AppendEscaped(out, e.name);
      out += "\",\"ph\":\"";
      out += e.ph;
      out += "\",\"pid\":1,\"tid\":";
      out += std::to_string(id);
      out += ",\"ts\":";
      out += std::to_string(e.ts);
      if (e.ph == 'X') {
        out += ",\"dur\":";
        out += std::to_string(e.dur);
      }
      if (e.ph == 'i') {
        out += ",\"s\":\"t\"";  // thread-scoped instant
      }
      if (!e.args.empty()) {
        out += ",\"args\":{";
        out += e.args;  // pre-rendered JSON body, caller-guaranteed valid
        out += '}';
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

util::Status Tracer::WriteTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::Unavailable("cannot open trace output: " + path);
  }
  out << ToChromeJson();
  out.flush();
  if (!out) {
    return util::Status::DataLoss("short write to trace output: " + path);
  }
  return util::Status::Ok();
}

}  // namespace histwalk::obs
