#ifndef HISTWALK_SERVICE_SAMPLING_SERVICE_H_
#define HISTWALK_SERVICE_SAMPLING_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>

#include "access/history_cache.h"
#include "access/shared_access.h"
#include "core/walker_factory.h"
#include "estimate/ensemble_runner.h"
#include "net/request_pipeline.h"
#include "obs/flight_recorder.h"
#include "obs/progress.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "store/history_store.h"

// The multi-tenant sampling service: the layer that turns the library into
// the system the ROADMAP aims at — one long-lived process serving many
// concurrent sampling tasks against one rate-limited remote OSN.
//
// A SamplingService owns the communal machinery once:
//
//  * one shared HistoryCache — every neighbor list ANY tenant fetches is
//    history for all of them (the paper's intra-walk reuse, generalized
//    across tenants);
//  * one multi-tenant net::RequestPipeline — a single wire funnel with
//    per-shard batching, cross-tenant singleflight (two tenants missing
//    the same node pay one wire fetch) and a weighted-fair scheduler so a
//    greedy tenant cannot starve light ones;
//  * optionally one store::HistoryStore — the shared journal funnel: every
//    new insert into the shared cache, whoever fetched it, is journaled
//    exactly once, and the service warm-starts from the store at
//    construction.
//
// Each SESSION (tenant) gets its own access::SharedAccessGroup view over
// the shared cache: its own walker spec, seed, per-walker stop conditions,
// its own hard query quota (tenant_query_budget) and its own billing
// (charged_queries) — so per-tenant accounting stays exact while the
// history is communal. Sessions run asynchronously on their own threads
// (one per session plus one per walker, each walker parking on the shared
// pipeline while it waits for the wire).
//
// Lifecycle: Submit() -> admission check (typed kUnavailable refusals when
// the resident-session or history-memory limit is hit; nothing is started
// or charged) -> the session runs -> Poll()/Wait() observe it -> Detach()
// drops a finished session and frees its admission slot. The destructor
// joins everything.
//
// Determinism: a session's traces and per-walker QueryStats depend only on
// its own (seed, spec, stop conditions) — never on co-tenants, cache
// state, scheduler policy or pipeline depth (the runner's determinism
// contract). What sharing changes is the BILL: charged_queries,
// wire_requests and waits. The exception is a binding tenant_query_budget:
// whether a node is charged depends on what co-tenants already fetched, so
// a budget-cut session's traces are only reproducible given the same
// co-tenant history; use per-walker query_budget when reproducible cuts
// matter (same trade as RunEnsemble's group budget).
//
// Isolation baseline: share_history = false gives every session a PRIVATE
// cache (and per-tenant singleflight only) behind the same pipeline and
// backend — the control arm the service_soak experiment measures the
// shared mode against. The store is not attached in isolated mode (the
// durable history is the shared cache's).

namespace histwalk::service {

using SessionId = uint64_t;

enum class SessionState {
  kRunning,
  kDone,    // result available until Detach
  kFailed,  // setup or run error; Wait returns the status
};

// Stable lower-case name ("running", "done", "failed").
std::string_view SessionStateName(SessionState state);

struct SessionOptions {
  core::WalkerSpec walker;
  uint32_t num_walkers = 4;
  uint64_t seed = 1;
  // Per-walker stop conditions, estimate::EnsembleOptions semantics; at
  // least one must be set.
  uint64_t max_steps = 0;
  uint64_t query_budget = 0;
  // Hard per-tenant fetch quota enforced by this session's group (0 =
  // unlimited). Refusals surface as kBudgetExhausted trace cuts, exactly
  // like a single-ensemble group budget.
  uint64_t tenant_query_budget = 0;
  // Fair-scheduler weight: batches per scheduling cycle relative to other
  // tenants. Clamped to >= 1.
  uint32_t weight = 1;
  // Optional streaming telemetry for this session: walkers feed the
  // tracker on every step, Submit wires its charged-queries probe to the
  // session's billing group (and its clock to the service clock), and
  // the final snapshot lands in SessionReport::progress. The tracker is
  // shared so the submitter can keep polling Snapshot() while — and
  // after — the session runs; the service freezes the probes before the
  // group can die.
  std::shared_ptr<obs::ProgressTracker> progress;
};

struct ServiceOptions {
  // Admission cap on RESIDENT sessions (running + finished-but-undetached;
  // a finished session still holds its results and tenant registration).
  // Clamped to >= 1.
  uint32_t max_sessions = 64;
  // Bounded admission wait: when the session cap is hit, Submit queues
  // behind departing sessions for up to this many REAL microseconds
  // (steady clock, independent of `clock`) before giving up with the
  // usual kUnavailable refusal. 0 = refuse immediately (the historical
  // behavior). Only the session cap queues; the history-memory guard
  // still refuses immediately, because detaching sessions is what frees
  // slots but only eviction frees memory. Waiters are not FIFO-ordered.
  uint64_t admission_wait_us = 0;
  // Refuse admission while resident history — the shared cache, or in
  // isolated mode the summed private caches — holds at least this many
  // bytes (0 = unlimited). A coarse memory guard: existing sessions keep
  // running, new ones are turned away until eviction or a bigger box.
  uint64_t max_history_bytes = 0;
  // Shared history (the point of the service) vs per-session private
  // caches (the isolated control arm).
  bool share_history = true;
  access::HistoryCacheOptions cache;
  // pipeline.cross_tenant_dedup is derived from share_history at
  // construction (isolated tenants must not share in-flight fetches);
  // whatever the caller sets is overridden when share_history is false.
  net::RequestPipelineOptions pipeline;
  // Optional durable journal for the shared cache; must outlive the
  // service. LoadInto(shared cache) runs at construction (warm start).
  // Ignored when share_history is false.
  store::HistoryStore* store = nullptr;
  // Clock used for session latency accounting (submit/done stamps), in
  // microseconds. Hook it to RemoteBackend::sim_now_us to measure
  // simulated wall-clock; nullptr = process steady clock.
  std::function<uint64_t()> clock;
  // Metrics registry every session's group pushes its miss-outcome
  // counters into (hw_access_* / hw_net_* names); null = obs::Global().
  obs::Registry* registry = nullptr;
  // Optional tracer shared by the service pipeline and every session's
  // views; must outlive the service. Forwarded into pipeline.tracer when
  // the caller left that unset.
  obs::Tracer* tracer = nullptr;
  // Per-session flight-recorder ring size: the last N miss-path outcomes
  // (wire fetch / store hit / join / refusal / error) surfaced in
  // SessionReport::flight. 0 disables recording.
  uint32_t flight_recorder_capacity = 128;
};

// Everything a finished session reports, copyable after Wait().
struct SessionReport {
  SessionId id = 0;
  // Traces, per-walker stats, merged samples — estimate layer semantics.
  estimate::EnsembleResult ensemble;
  // This tenant's wire traffic, queue waits and budget refusals on the
  // shared pipeline.
  net::TenantPipelineStats pipeline;
  // Backend fetches billed to this tenant (its group's counter).
  uint64_t charged_queries = 0;
  // The tail of this session's miss-path outcomes (bounded ring, see
  // ServiceOptions::flight_recorder_capacity). Empty when disabled.
  obs::FlightLog flight;
  // Final convergence snapshot (has_progress set when the session was
  // submitted with a ProgressTracker).
  bool has_progress = false;
  obs::ProgressSnapshot progress;
  uint64_t submit_clock_us = 0;
  uint64_t done_clock_us = 0;
  uint64_t LatencyUs() const { return done_clock_us - submit_clock_us; }
};

struct ServiceStats {
  uint64_t submitted = 0;           // sessions admitted
  uint64_t admission_refusals = 0;  // typed kUnavailable turndowns
  uint64_t admission_waiting = 0;   // Submits queued behind the cap now
  uint64_t admission_waits = 0;     // Submits that ever queued
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t detached = 0;
  uint64_t resident_sessions = 0;  // running + undetached right now
  // Backend fetches billed across all sessions ever admitted (detached
  // sessions included).
  uint64_t charged_queries = 0;
  access::HistoryCacheStats cache;        // the shared cache (zeros when
                                          // share_history is false)
  net::RequestPipelineStats pipeline;     // aggregate over tenants
};

class SamplingService {
 public:
  // `backend` must outlive the service. Wrap it in a net::RemoteBackend to
  // run against the simulated wire.
  SamplingService(const access::AccessBackend* backend,
                  ServiceOptions options = {});
  // Joins every session thread (running sessions finish their walks).
  ~SamplingService();

  SamplingService(const SamplingService&) = delete;
  SamplingService& operator=(const SamplingService&) = delete;

  // Admits and starts a session. kUnavailable when the resident-session or
  // history-memory limit refuses it (IsUnavailable; nothing started);
  // kInvalidArgument on malformed options. Thread-safe.
  util::Result<SessionId> Submit(const SessionOptions& options);

  // Current state; kNotFound for unknown/detached ids. Thread-safe.
  util::Result<SessionState> Poll(SessionId id) const;

  // Blocks until the session leaves kRunning, then returns a copy of its
  // report (kDone) or the error that ended it (kFailed). The session stays
  // resident either way until Detach. Thread-safe.
  util::Result<SessionReport> Wait(SessionId id);

  // Drops a FINISHED session: frees its admission slot, its tenant
  // registration and its report. kFailedPrecondition while it is still
  // running (wait first), kNotFound for unknown ids. Thread-safe.
  util::Status Detach(SessionId id);

  ServiceStats stats() const;
  // OK, or why the construction-time warm start from options.store fell
  // back to a cold cache (e.g. kDataLoss on a corrupt snapshot).
  const util::Status& warm_start_status() const { return warm_start_status_; }
  const access::HistoryCache& shared_cache() const { return shared_cache_; }
  const net::RequestPipeline& pipeline() const { return pipeline_; }
  const ServiceOptions& options() const { return options_; }

 private:
  struct Session {
    SessionId id = 0;
    SessionOptions options;
    SessionState state = SessionState::kRunning;
    util::Status error;  // kFailed detail
    SessionReport report;
    std::unique_ptr<access::SharedAccessGroup> group;
    std::unique_ptr<obs::FlightRecorder> flight;  // outlives group use
    net::TenantId tenant = 0;
    std::thread thread;  // joined by Detach or the destructor
  };

  uint64_t ClockNowUs() const;
  void RunSession(Session* session);

  const access::AccessBackend* backend_;
  ServiceOptions options_;
  access::HistoryCache shared_cache_;
  net::RequestPipeline pipeline_;
  util::Status warm_start_status_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;  // signaled on session completion
  std::condition_variable slot_cv_;  // signaled when Detach frees a slot
  std::map<SessionId, std::unique_ptr<Session>> sessions_;
  SessionId next_id_ = 1;
  uint64_t submitted_ = 0;
  uint64_t admission_refusals_ = 0;
  uint64_t admission_waiting_ = 0;
  uint64_t admission_waits_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t detached_ = 0;
  uint64_t detached_charged_ = 0;  // charged_queries of detached sessions
};

}  // namespace histwalk::service

#endif  // HISTWALK_SERVICE_SAMPLING_SERVICE_H_
