#include "service/sampling_service.h"

#include <chrono>
#include <vector>

#include "util/check.h"

namespace histwalk::service {

std::string_view SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kFailed:
      return "failed";
  }
  return "unknown";
}

namespace {

ServiceOptions NormalizeServiceOptions(ServiceOptions options) {
  if (options.max_sessions == 0) options.max_sessions = 1;
  // Isolated tenants must not share in-flight fetches either: a
  // cross-tenant singleflight join would hand a tenant a response that
  // never lands in its own private cache. Derive the dedup scope from the
  // sharing mode so callers cannot get an inconsistent combination.
  if (!options.share_history) options.pipeline.cross_tenant_dedup = false;
  // One tracer covers the whole service: forward it into the pipeline
  // unless the caller wired a different one there explicitly.
  if (options.pipeline.tracer == nullptr) {
    options.pipeline.tracer = options.tracer;
  }
  return options;
}

}  // namespace

SamplingService::SamplingService(const access::AccessBackend* backend,
                                 ServiceOptions options)
    : backend_(backend),
      options_(NormalizeServiceOptions(std::move(options))),
      shared_cache_(options_.cache),
      pipeline_(options_.pipeline) {
  HW_CHECK(backend_ != nullptr);
  if (options_.store != nullptr && options_.share_history) {
    // Warm start: yesterday's crawls are today's shared history. A failed
    // load (corrupt files) degrades to a cold start, reported here rather
    // than aborting a service that can still run.
    warm_start_status_ = options_.store->LoadInto(shared_cache_);
  }
}

SamplingService::~SamplingService() {
  std::vector<std::thread*> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) threads.push_back(&session->thread);
  }
  // Join with mu_ released: session threads take it to publish results.
  for (std::thread* thread : threads) {
    if (thread->joinable()) thread->join();
  }
}

uint64_t SamplingService::ClockNowUs() const {
  if (options_.clock) return options_.clock();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

util::Result<SessionId> SamplingService::Submit(const SessionOptions& options) {
  if (options.num_walkers == 0) {
    return util::Status::InvalidArgument("session needs at least one walker");
  }
  if (options.max_steps == 0 && options.query_budget == 0) {
    return util::Status::InvalidArgument(
        "session needs a stop condition (max_steps or query_budget)");
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (sessions_.size() >= options_.max_sessions &&
      options_.admission_wait_us > 0) {
    // Queue behind the cap instead of refusing outright: Detach frees a
    // slot and signals slot_cv_. Real-time deadline on purpose — an
    // admission wait is caller-visible latency even when the service
    // itself runs on a simulated clock.
    ++admission_waits_;
    ++admission_waiting_;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(options_.admission_wait_us);
    slot_cv_.wait_until(lock, deadline, [this] {
      return sessions_.size() < options_.max_sessions;
    });
    --admission_waiting_;
  }
  if (sessions_.size() >= options_.max_sessions) {
    ++admission_refusals_;
    return util::Status::Unavailable(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        " resident); detach a finished session or retry later");
  }
  if (options_.max_history_bytes != 0) {
    // Resident history: the shared cache, or — in isolated mode — the sum
    // of the resident sessions' private caches (thread-safe stats reads).
    uint64_t resident_bytes = 0;
    if (options_.share_history) {
      resident_bytes = shared_cache_.MemoryBytes();
    } else {
      for (const auto& [id, session] : sessions_) {
        resident_bytes += session->group->cache().MemoryBytes();
      }
    }
    if (resident_bytes >= options_.max_history_bytes) {
      ++admission_refusals_;
      return util::Status::Unavailable(
          "history memory limit reached (" + std::to_string(resident_bytes) +
          " of " + std::to_string(options_.max_history_bytes) +
          " bytes resident)");
    }
  }

  auto session = std::make_unique<Session>();
  session->id = next_id_++;
  session->options = options;
  access::SharedAccessOptions group_options;
  group_options.query_budget = options.tenant_query_budget;
  group_options.registry = options_.registry;
  if (options_.share_history) {
    session->group = std::make_unique<access::SharedAccessGroup>(
        backend_, shared_cache_, group_options);
    if (options_.store != nullptr) {
      // The shared journal funnel: all tenants insert into one cache, and
      // Put's inserted-flag dedups across them, so the store sees every
      // response exactly once whoever fetched it.
      session->group->set_history_journal(options_.store);
    }
  } else {
    group_options.cache = options_.cache;
    session->group = std::make_unique<access::SharedAccessGroup>(
        backend_, group_options);
  }
  if (options_.flight_recorder_capacity > 0) {
    // Per-session ring on the service clock: the report's "why was I
    // slow / refused?" tail without a full trace file.
    session->flight = std::make_unique<obs::FlightRecorder>(
        options_.flight_recorder_capacity, [this] { return ClockNowUs(); });
    session->group->set_flight_recorder(session->flight.get());
  }
  session->tenant = pipeline_.AddTenant(session->group.get(), options.weight);
  session->group->set_async_fetcher(pipeline_.tenant_fetcher(session->tenant));
  if (session->options.progress != nullptr) {
    // The tracker's charge probe reads this session's own billing group;
    // RunSession freezes it before Detach can destroy the group.
    session->options.progress->AttachCallbacks(
        [group = session->group.get()] { return group->charged_queries(); },
        options_.clock);
  }
  session->report.id = session->id;
  session->report.submit_clock_us = ClockNowUs();
  ++submitted_;

  Session* raw = session.get();
  sessions_.emplace(raw->id, std::move(session));
  raw->thread = std::thread([this, raw] { RunSession(raw); });
  return raw->id;
}

void SamplingService::RunSession(Session* session) {
  estimate::EnsembleOptions ensemble_options;
  ensemble_options.num_walkers = session->options.num_walkers;
  ensemble_options.seed = session->options.seed;
  ensemble_options.max_steps = session->options.max_steps;
  ensemble_options.query_budget = session->options.query_budget;
  ensemble_options.tracer = options_.tracer;
  obs::ProgressTracker* progress = session->options.progress.get();
  ensemble_options.progress = progress;
  auto result = estimate::RunEnsembleAttached(
      *session->group, session->options.walker, ensemble_options);
  const uint64_t done_us = ClockNowUs();
  if (progress != nullptr) {
    // Freeze the probes while the group is still guaranteed alive (Detach
    // refuses running sessions, and state only flips under mu_ below) —
    // the shared tracker may outlive the session inside a caller's handle.
    progress->DetachCallbacks();
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (result.ok()) {
    session->report.ensemble = *std::move(result);
    session->report.charged_queries = session->group->charged_queries();
    session->report.pipeline = pipeline_.tenant_stats(session->tenant);
    if (session->flight != nullptr) {
      session->report.flight = session->flight->TakeLog();
    }
    if (progress != nullptr) {
      session->report.has_progress = true;
      session->report.progress = progress->Snapshot();
    }
    session->report.done_clock_us = done_us;
    session->state = SessionState::kDone;
    ++completed_;
  } else {
    session->error = result.status();
    session->state = SessionState::kFailed;
    ++failed_;
  }
  done_cv_.notify_all();
}

util::Result<SessionState> SamplingService::Poll(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return util::Status::NotFound("unknown session " + std::to_string(id));
  }
  return it->second->state;
}

util::Result<SessionReport> SamplingService::Wait(SessionId id) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return util::Status::NotFound("unknown session " + std::to_string(id));
    }
    Session& session = *it->second;
    if (session.state == SessionState::kDone) return session.report;
    if (session.state == SessionState::kFailed) return session.error;
    done_cv_.wait(lock);
  }
}

util::Status SamplingService::Detach(SessionId id) {
  std::unique_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return util::Status::NotFound("unknown session " + std::to_string(id));
    }
    if (it->second->state == SessionState::kRunning) {
      return util::Status::FailedPrecondition(
          "session " + std::to_string(id) + " is still running; Wait first");
    }
    session = std::move(it->second);
    sessions_.erase(it);
    // A finished session is quiescent on the pipeline; sever its group.
    pipeline_.RemoveTenant(session->tenant);
    detached_charged_ += session->group->charged_queries();
    ++detached_;
    // The freed slot may admit a queued Submit.
    slot_cv_.notify_one();
  }
  // Join outside mu_: the thread's tail may still be returning from its
  // own publish (which needed the lock).
  if (session->thread.joinable()) session->thread.join();
  return util::Status::Ok();
}

ServiceStats SamplingService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats stats;
  stats.submitted = submitted_;
  stats.admission_refusals = admission_refusals_;
  stats.admission_waiting = admission_waiting_;
  stats.admission_waits = admission_waits_;
  stats.completed = completed_;
  stats.failed = failed_;
  stats.detached = detached_;
  stats.resident_sessions = sessions_.size();
  stats.charged_queries = detached_charged_;
  for (const auto& [id, session] : sessions_) {
    stats.charged_queries += session->group->charged_queries();
  }
  if (options_.share_history) stats.cache = shared_cache_.stats();
  stats.pipeline = pipeline_.stats();
  return stats;
}

}  // namespace histwalk::service
