#ifndef HISTWALK_UTIL_RW_SPINLOCK_H_
#define HISTWALK_UTIL_RW_SPINLOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

// A minimal shared/exclusive spinlock for tiny critical sections.
//
// std::shared_mutex goes through pthread_rwlock: two uninlinable calls and
// a handful of atomics per acquisition — ~30ns of overhead bracketing a
// cache-shard critical section that itself runs in single-digit
// nanoseconds. This lock is one word: readers fetch_add a count, the
// writer claims a high bit and drains readers. Acquire/release is carried
// entirely by the atomic ops on `state_`, so ThreadSanitizer reasons about
// it natively (no annotations needed).
//
// Design limits, deliberately accepted for the cache workload:
//  * contenders spin, so hold times must stay tiny (no I/O, no allocation
//    beyond the cache's own insert path) — each spin loop yields to the
//    scheduler, so even a single-core machine makes progress when a lock
//    holder is preempted;
//  * writer-preference: an arriving writer blocks new readers, so a steady
//    reader stream cannot starve eviction;
//  * not recursive, no lock-free upgrade path (a shared holder must release
//    before taking exclusive).
//
// Satisfies SharedLockable: std::shared_lock<RwSpinLock> /
// std::unique_lock<RwSpinLock> work as drop-ins for the shared_mutex
// equivalents.
//
// Contention telemetry: attach_counters() points the lock at an external
// RwSpinLockCounters struct (off by default — a detached lock pays one
// relaxed pointer load and a predicted branch per acquisition, and
// HISTWALK_DISABLE_PROFILING compiles even that out). Attach during
// single-threaded wiring, before the lock is contended; the counters must
// outlive the lock's last acquisition. "Contended" means the acquisition
// observed a holder it had to wait out at least once, so
// contended/acquires is a direct contention ratio.

namespace histwalk::util {

// Telemetry sink for one (or a group of) RwSpinLocks. All fields are
// relaxed monotone counters; cross-field consistency holds at quiescence,
// same contract as the cache stats structs.
struct RwSpinLockCounters {
  std::atomic<uint64_t> shared_acquires{0};
  std::atomic<uint64_t> shared_contended{0};
  std::atomic<uint64_t> exclusive_acquires{0};
  std::atomic<uint64_t> exclusive_contended{0};
};

class RwSpinLock {
 public:
  RwSpinLock() = default;
  RwSpinLock(const RwSpinLock&) = delete;
  RwSpinLock& operator=(const RwSpinLock&) = delete;

  // Wiring-time only: must be called before the lock is shared between
  // threads (the plain store is not synchronized against concurrent
  // acquisitions). Pass nullptr to detach.
  void attach_counters(RwSpinLockCounters* counters) {
#ifndef HISTWALK_DISABLE_PROFILING
    counters_ = counters;
#else
    (void)counters;
#endif
  }

  void lock_shared() {
    bool contended = false;
    for (;;) {
      // Optimistic: count in, then check no writer claimed the bit. The
      // RMW makes this an acquire on the writer's release chain.
      uint32_t state = state_.fetch_add(1, std::memory_order_acquire);
      if ((state & kWriter) == 0) break;
      // A writer holds or awaits the lock: step back out and wait, so the
      // writer's reader-drain loop can terminate.
      contended = true;
      state_.fetch_sub(1, std::memory_order_relaxed);
      SpinUntil([&] {
        return (state_.load(std::memory_order_relaxed) & kWriter) == 0;
      });
    }
    NoteAcquire(/*exclusive=*/false, contended);
  }

  void unlock_shared() { state_.fetch_sub(1, std::memory_order_release); }

  void lock() {
    bool contended = false;
    // Phase 1: claim the writer bit (one writer at a time; arriving
    // readers now bounce).
    for (;;) {
      uint32_t state = state_.load(std::memory_order_relaxed);
      if ((state & kWriter) == 0 &&
          state_.compare_exchange_weak(state, state | kWriter,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;
      }
      contended = true;
      SpinUntil([&] {
        return (state_.load(std::memory_order_relaxed) & kWriter) == 0;
      });
    }
    // Phase 2: drain readers that were already counted in.
    if ((state_.load(std::memory_order_acquire) & kReaderMask) != 0) {
      contended = true;
      SpinUntil([&] {
        return (state_.load(std::memory_order_acquire) & kReaderMask) == 0;
      });
    }
    NoteAcquire(/*exclusive=*/true, contended);
  }

  void unlock() { state_.fetch_and(~kWriter, std::memory_order_release); }

  // try_lock completes the Lockable requirements of std::unique_lock.
  bool try_lock() {
    uint32_t expected = 0;
    if (state_.compare_exchange_strong(expected, kWriter,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      NoteAcquire(/*exclusive=*/true, /*contended=*/false);
      return true;
    }
    return false;
  }

 private:
  static constexpr uint32_t kWriter = 1u << 31;
  static constexpr uint32_t kReaderMask = kWriter - 1;

  void NoteAcquire(bool exclusive, bool contended) {
#ifndef HISTWALK_DISABLE_PROFILING
    RwSpinLockCounters* counters = counters_;
    if (counters == nullptr) return;
    if (exclusive) {
      counters->exclusive_acquires.fetch_add(1, std::memory_order_relaxed);
      if (contended) {
        counters->exclusive_contended.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      counters->shared_acquires.fetch_add(1, std::memory_order_relaxed);
      if (contended) {
        counters->shared_contended.fetch_add(1, std::memory_order_relaxed);
      }
    }
#else
    (void)exclusive;
    (void)contended;
#endif
  }

  template <typename Pred>
  static void SpinUntil(Pred&& ready) {
    for (int spins = 0; !ready(); ++spins) {
      if (spins >= kSpinsBeforeYield) {
        // Cede the core: on few-core machines the thread we are waiting
        // for may not even be running.
        std::this_thread::yield();
      }
    }
  }

  static constexpr int kSpinsBeforeYield = 64;

  std::atomic<uint32_t> state_{0};
#ifndef HISTWALK_DISABLE_PROFILING
  RwSpinLockCounters* counters_ = nullptr;
#endif
};

}  // namespace histwalk::util

#endif  // HISTWALK_UTIL_RW_SPINLOCK_H_
