#include "util/flags.h"

#include <cstdlib>

namespace histwalk::util {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<size_t>(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

Result<Flags> Flags::Parse(const std::vector<std::string>& args) {
  Flags flags;
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const size_t eq = arg.find('=');
    std::string name = arg.substr(2, eq == std::string::npos ? std::string::npos
                                                             : eq - 2);
    if (name.empty()) {
      return Status::InvalidArgument("malformed flag: " + arg);
    }
    std::string value =
        eq == std::string::npos ? "true" : arg.substr(eq + 1);
    flags.values_[std::move(name)] = std::move(value);  // last wins
  }
  return flags;
}

const std::string* Flags::Lookup(std::string_view name) const {
  read_.insert(std::string(name));
  auto it = values_.find(name);
  return it == values_.end() ? nullptr : &it->second;
}

bool Flags::Has(std::string_view name) const {
  return Lookup(name) != nullptr;
}

std::string Flags::GetString(std::string_view name,
                             std::string fallback) const {
  const std::string* value = Lookup(name);
  return value == nullptr ? std::move(fallback) : *value;
}

Result<uint64_t> Flags::GetUint(std::string_view name,
                                uint64_t fallback) const {
  const std::string* value = Lookup(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  if (value->empty() || value->front() == '-') {
    return Status::InvalidArgument("--" + std::string(name) +
                                   " expects a non-negative integer, got \"" +
                                   *value + "\"");
  }
  const uint64_t parsed = std::strtoull(value->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("--" + std::string(name) +
                                   " expects an integer, got \"" + *value +
                                   "\"");
  }
  return parsed;
}

Result<double> Flags::GetDouble(std::string_view name, double fallback) const {
  const std::string* value = Lookup(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (value->empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("--" + std::string(name) +
                                   " expects a number, got \"" + *value +
                                   "\"");
  }
  return parsed;
}

Result<bool> Flags::GetBool(std::string_view name, bool fallback) const {
  const std::string* value = Lookup(name);
  if (value == nullptr) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  return Status::InvalidArgument("--" + std::string(name) +
                                 " expects true/false, got \"" + *value +
                                 "\"");
}

Status Flags::CheckAllRead() const {
  for (const auto& [name, value] : values_) {
    if (read_.find(name) == read_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
  }
  return Status::Ok();
}

}  // namespace histwalk::util
