#ifndef HISTWALK_UTIL_FLAGS_H_
#define HISTWALK_UTIL_FLAGS_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

// Minimal named command-line flags for the example binaries.
//
// Tokens of the form `--name=value` (or bare `--name`, meaning "true") may
// appear anywhere on the command line; everything else is positional and
// keeps its relative order. There is no registry: binaries read the flags
// they care about with the typed Get* accessors (each records the name as
// read) and finish with CheckAllRead(), which rejects any flag the binary
// never looked at — the typo guard a registry would otherwise provide.
//
//   HW_ASSIGN_OR_RETURN(util::Flags flags, util::Flags::Parse(argc, argv));
//   HW_ASSIGN_OR_RETURN(uint64_t budget, flags.GetUint("budget", 1000));
//   std::string wal = flags.GetString("wal", "");
//   HW_RETURN_IF_ERROR(flags.CheckAllRead());

namespace histwalk::util {

class Flags {
 public:
  // argv[0] is skipped. kInvalidArgument on malformed tokens ("--=x",
  // "--"). A repeated flag keeps the LAST occurrence (override-friendly).
  static Result<Flags> Parse(int argc, const char* const* argv);
  static Result<Flags> Parse(const std::vector<std::string>& args);

  // True when the flag was given (marks it read).
  bool Has(std::string_view name) const;

  // Typed accessors: `fallback` when absent, kInvalidArgument when present
  // but unparseable. All mark the flag as read.
  std::string GetString(std::string_view name, std::string fallback) const;
  Result<uint64_t> GetUint(std::string_view name, uint64_t fallback) const;
  Result<double> GetDouble(std::string_view name, double fallback) const;
  // Accepts true/false/1/0/yes/no; a bare `--name` is true.
  Result<bool> GetBool(std::string_view name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // kInvalidArgument naming the first flag no accessor ever read — given
  // flags the binary does not understand are almost certainly typos.
  Status CheckAllRead() const;

 private:
  const std::string* Lookup(std::string_view name) const;

  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
  mutable std::set<std::string, std::less<>> read_;
};

}  // namespace histwalk::util

#endif  // HISTWALK_UTIL_FLAGS_H_
