#include "util/random.h"

#include <cmath>
#include <numbers>

namespace histwalk::util {

namespace {

// SplitMix64 step; used for seeding and sub-seed derivation.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;

}  // namespace

void Random::Seed(uint64_t seed) {
  // Derive state and stream from the seed through SplitMix64 so that nearby
  // seeds (0, 1, 2, ...) still yield unrelated streams.
  uint64_t sm = seed;
  state_ = SplitMix64(sm);
  inc_ = SplitMix64(sm) | 1u;  // stream selector must be odd
  NextUint32();
}

uint32_t Random::NextUint32() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Random::NextUint64() {
  return (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
}

uint32_t Random::UniformInt(uint32_t bound) {
  HW_DCHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection only in the biased zone.
  uint64_t m = static_cast<uint64_t>(NextUint32()) * bound;
  uint32_t low = static_cast<uint32_t>(m);
  if (low < bound) {
    uint32_t threshold = -bound % bound;
    while (low < threshold) {
      m = static_cast<uint64_t>(NextUint32()) * bound;
      low = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

size_t Random::UniformIndex(size_t size) {
  HW_DCHECK(size > 0);
  if (size <= UINT32_MAX) return UniformInt(static_cast<uint32_t>(size));
  // Fallback for containers larger than 2^32 (not expected in practice).
  uint64_t bound = size;
  uint64_t r;
  do {
    r = NextUint64();
  } while (r >= bound * (UINT64_MAX / bound));
  return r % bound;
}

double Random::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Random::Gaussian() {
  // Box-Muller; draws until the uniform is nonzero so log() is finite.
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 == 0.0);
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Random::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Random::Exponential(double lambda) {
  HW_DCHECK(lambda > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

double Random::Pareto(double x_min, double alpha) {
  HW_DCHECK(x_min > 0.0);
  HW_DCHECK(alpha > 1.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return x_min * std::pow(u, -1.0 / (alpha - 1.0));
}

size_t Random::WeightedIndex(std::span<const double> weights) {
  HW_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  HW_DCHECK(total > 0.0);
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // guards against rounding at the boundary
}

Random Random::Fork() { return Random(NextUint64()); }

AliasTable::AliasTable(std::span<const double> weights) {
  HW_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    HW_CHECK(w >= 0.0);
    total += w;
  }
  HW_CHECK(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Vose's algorithm: split normalized weights into "small" and "large"
  // buckets and pair them so every column has total mass 1/n.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t l : large) prob_[l] = 1.0;
  for (uint32_t s : small) prob_[s] = 1.0;  // numeric leftovers
}

size_t AliasTable::Sample(Random& rng) const {
  size_t column = rng.UniformIndex(prob_.size());
  return rng.UniformDouble() < prob_[column] ? column : alias_[column];
}

uint64_t SubSeed(uint64_t seed, uint64_t index) {
  uint64_t state = seed ^ (0xa0761d6478bd642fULL * (index + 1));
  SplitMix64(state);
  return SplitMix64(state);
}

}  // namespace histwalk::util
