#ifndef HISTWALK_UTIL_STATUS_H_
#define HISTWALK_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

// Status / Result<T> error handling for the histwalk library.
//
// The library does not use exceptions (per the project style). Fallible
// operations return a Status, or a Result<T> when they also produce a value.
// Programmer errors (broken invariants) abort through the HW_CHECK macros in
// util/check.h instead.

namespace histwalk::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,  // e.g. a query budget has been spent
  kBudgetExhausted,    // a shared (group-level) fetch budget refused the call
  kDataLoss,           // a durable file is corrupt or unrecoverably truncated
  kUnavailable,        // a service refused admission (capacity, memory, ...)
  kInternal,
  kDeadlineExceeded,   // an operation gave up after its caller-set deadline
};

// Returns a stable lower-case name for `code` ("ok", "invalid_argument", ...).
std::string_view StatusCodeName(StatusCode code);

// A cheap value type carrying an error code and a human-readable message.
// The OK status carries no message and allocates nothing.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// True when a walk was cut by a spent query budget — either the access's
// own (kResourceExhausted) or a shared group quota (kBudgetExhausted).
// Budget stops are expected run terminations, not setup errors.
inline bool IsBudgetStop(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kBudgetExhausted;
}

// True when a durable store file (snapshot, WAL) failed validation — bad
// magic, checksum mismatch, or a truncation the reader cannot repair. The
// store layer guarantees corruption surfaces as this code rather than as
// silently wrong cache contents.
inline bool IsDataLoss(const Status& status) {
  return status.code() == StatusCode::kDataLoss;
}

// True when a long-lived service refused to take the work on at all — an
// admission-control rejection (concurrent-session cap, memory limit), not a
// budget cut mid-run and not a setup error. Callers are expected to retry
// later or against another instance; nothing was started or charged.
inline bool IsUnavailable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

// True when an operation with a caller-set deadline ran out of time before
// completing — an RPC reply that never arrived, an admission wait that
// expired. Distinct from kUnavailable: the far side may still be working;
// nothing is known about whether the work happened.
inline bool IsDeadlineExceeded(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded;
}

// Result<T> is either a value or a non-OK Status (never both).
//
//   Result<Graph> g = builder.Build();
//   if (!g.ok()) return g.status();
//   Use(*g);
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    // A Result constructed from a status must carry an error; an OK status
    // with no value would be unusable.
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  // The value, or `fallback` when this Result holds an error — for call
  // sites where a default is genuinely fine (optional config lookups);
  // error-propagating code uses HW_ASSIGN_OR_RETURN instead.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }
  T value_or(T fallback) && {
    return ok() ? *std::move(value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

}  // namespace histwalk::util

// Propagates a non-OK status from an expression producing a Status.
#define HW_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::histwalk::util::Status hw_status_ = (expr); \
    if (!hw_status_.ok()) return hw_status_;      \
  } while (false)

// Evaluates a Result<T> expression, propagating the error or binding the
// value: HW_ASSIGN_OR_RETURN(auto g, builder.Build());
#define HW_ASSIGN_OR_RETURN(lhs, expr)             \
  HW_ASSIGN_OR_RETURN_IMPL_(                       \
      HW_STATUS_CONCAT_(hw_result_, __LINE__), lhs, expr)
#define HW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()
#define HW_STATUS_CONCAT_(a, b) HW_STATUS_CONCAT_IMPL_(a, b)
#define HW_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // HISTWALK_UTIL_STATUS_H_
