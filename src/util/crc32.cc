#include "util/crc32.h"

#include <array>

namespace histwalk::util {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t crc) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace histwalk::util
