#ifndef HISTWALK_UTIL_CRC32_H_
#define HISTWALK_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), implemented from scratch like
// util/md5. The store layer checksums every snapshot section and WAL record
// with it: cheap enough to run on the append path, strong enough to catch
// the torn writes and bit rot the crash-safety contract promises to surface
// as kDataLoss. Not a cryptographic hash.

namespace histwalk::util {

// CRC of `data`, optionally continuing from a previous CRC so large buffers
// can be checksummed in pieces: Crc32(b, Crc32(a)) == Crc32(ab).
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

}  // namespace histwalk::util

#endif  // HISTWALK_UTIL_CRC32_H_
