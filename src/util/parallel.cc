#include "util/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace histwalk::util {

void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 unsigned num_threads) {
  if (count == 0) return;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  unsigned threads = num_threads == 0 ? hw : num_threads;
  if (threads > count) threads = static_cast<unsigned>(count);
  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
}

}  // namespace histwalk::util
