#include "util/md5.h"

#include <cstring>

namespace histwalk::util {

namespace {

// Per-round left-rotation amounts (RFC 1321, section 3.4).
constexpr uint32_t kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

uint32_t RotateLeft(uint32_t x, uint32_t c) {
  return (x << c) | (x >> (32 - c));
}

struct Md5State {
  uint32_t a = 0x67452301;
  uint32_t b = 0xefcdab89;
  uint32_t c = 0x98badcfe;
  uint32_t d = 0x10325476;

  void ProcessBlock(const uint8_t block[64]) {
    uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
      m[i] = static_cast<uint32_t>(block[4 * i]) |
             (static_cast<uint32_t>(block[4 * i + 1]) << 8) |
             (static_cast<uint32_t>(block[4 * i + 2]) << 16) |
             (static_cast<uint32_t>(block[4 * i + 3]) << 24);
    }
    uint32_t va = a, vb = b, vc = c, vd = d;
    for (int i = 0; i < 64; ++i) {
      uint32_t f;
      int g;
      if (i < 16) {
        f = (vb & vc) | (~vb & vd);
        g = i;
      } else if (i < 32) {
        f = (vd & vb) | (~vd & vc);
        g = (5 * i + 1) % 16;
      } else if (i < 48) {
        f = vb ^ vc ^ vd;
        g = (3 * i + 5) % 16;
      } else {
        f = vc ^ (vb | ~vd);
        g = (7 * i) % 16;
      }
      uint32_t temp = vd;
      vd = vc;
      vc = vb;
      vb = vb + RotateLeft(va + f + kSine[i] + m[g], kShift[i]);
      va = temp;
    }
    a += va;
    b += vb;
    c += vc;
    d += vd;
  }
};

}  // namespace

Md5Digest Md5(std::string_view data) {
  Md5State state;
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());
  size_t len = data.size();

  size_t full_blocks = len / 64;
  for (size_t i = 0; i < full_blocks; ++i) {
    state.ProcessBlock(bytes + 64 * i);
  }

  // Final block(s): remaining bytes + 0x80 pad + zeros + 64-bit bit length.
  uint8_t tail[128] = {0};
  size_t rem = len - full_blocks * 64;
  std::memcpy(tail, bytes + full_blocks * 64, rem);
  tail[rem] = 0x80;
  size_t tail_len = (rem + 1 + 8 <= 64) ? 64 : 128;
  uint64_t bit_len = static_cast<uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 8 + i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  state.ProcessBlock(tail);
  if (tail_len == 128) state.ProcessBlock(tail + 64);

  Md5Digest digest;
  const uint32_t words[4] = {state.a, state.b, state.c, state.d};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      digest[4 * i + j] = static_cast<uint8_t>(words[i] >> (8 * j));
    }
  }
  return digest;
}

std::string Md5Hex(std::string_view data) {
  static constexpr char kHex[] = "0123456789abcdef";
  Md5Digest digest = Md5(data);
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[2 * i] = kHex[digest[i] >> 4];
    out[2 * i + 1] = kHex[digest[i] & 0xf];
  }
  return out;
}

uint64_t Md5Uint64(std::string_view data) {
  Md5Digest digest = Md5(data);
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | digest[i];
  }
  return value;
}

}  // namespace histwalk::util
