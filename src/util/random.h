#ifndef HISTWALK_UTIL_RANDOM_H_
#define HISTWALK_UTIL_RANDOM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

// Seedable, deterministic random number generation for the library.
//
// All stochastic components in histwalk (graph generators, walkers,
// experiment runners) take an explicit 64-bit seed and draw exclusively from
// Random, so every experiment is reproducible bit-for-bit across runs and
// platforms. The engine is PCG32 (O'Neill, 2014): 64-bit state, 32-bit
// output, period 2^64, passes BigCrush, and is cheap enough for the inner
// loop of a random walk.

namespace histwalk::util {

class Random {
 public:
  // Streams derived from different seeds are statistically independent.
  explicit Random(uint64_t seed) { Seed(seed); }
  Random() : Random(0x853c49e6748fea9bULL) {}

  void Seed(uint64_t seed);

  // Uniform bits.
  uint32_t NextUint32();
  uint64_t NextUint64();

  // Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  // nearly-divisionless unbiased method.
  uint32_t UniformInt(uint32_t bound);
  // Uniform index into a container of `size` elements; size must be > 0.
  size_t UniformIndex(size_t size);

  // Uniform double in [0, 1) with 53 random bits.
  double UniformDouble();
  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller (no state carried between calls).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  // Exponential with rate lambda > 0.
  double Exponential(double lambda);

  // Pareto-tailed positive value: x_min * U^{-1/(alpha-1)}, alpha > 1.
  // Used for power-law degree sequences and heavy-tailed attributes.
  double Pareto(double x_min, double alpha);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::span<T> items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Index drawn with probability proportional to weights[i]. Linear scan;
  // use AliasTable for repeated draws from the same distribution.
  size_t WeightedIndex(std::span<const double> weights);

  // Forks an independent child generator; used to give each parallel
  // experiment instance its own stream.
  Random Fork();

 private:
  uint64_t state_;
  uint64_t inc_;
};

// Alias-method sampler: O(n) setup, O(1) per draw from a fixed discrete
// distribution. Used by the Chung-Lu generator and degree-weighted sampling.
class AliasTable {
 public:
  // Weights must be non-negative with a positive sum.
  explicit AliasTable(std::span<const double> weights);

  size_t Sample(Random& rng) const;
  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

// Splits a 64-bit seed into a well-mixed stream of sub-seeds (SplitMix64).
// Deterministic: seed + index fully determine the result.
uint64_t SubSeed(uint64_t seed, uint64_t index);

}  // namespace histwalk::util

#endif  // HISTWALK_UTIL_RANDOM_H_
