#include "util/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "util/check.h"

namespace histwalk::util {

TextTable::TextTable(std::vector<std::string> column_names)
    : columns_(std::move(column_names)) {
  HW_CHECK(!columns_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  HW_CHECK_MSG(cells.size() == columns_.size(),
               "row width must match column count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string TextTable::Cell(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

std::string TextTable::Cell(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return buf;
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::ToCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  append_row(columns_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status TextTable::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  file << ToCsv();
  if (!file) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

}  // namespace histwalk::util
