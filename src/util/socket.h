#ifndef HISTWALK_UTIL_SOCKET_H_
#define HISTWALK_UTIL_SOCKET_H_

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

#if defined(_WIN32)
#error "util/socket.h is POSIX-only (the telemetry server has no Windows port)"
#endif

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

// Thin RAII wrappers over POSIX TCP sockets — just enough substrate for
// the embedded telemetry endpoint (obs/http_exporter.h), and the first
// networking brick for the ROADMAP item-1 service daemon. Deliberately
// minimal: blocking I/O, IPv4 loopback by default, no TLS, no poll loop.
// Everything returns util::Status/Result instead of throwing; EINTR is
// retried internally.

namespace histwalk::util {

// An owned file descriptor for one accepted (or connected) stream.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() { Close(); }
  TcpStream(TcpStream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpStream& operator=(TcpStream&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Connects to 127.0.0.1:port (test/client convenience).
  static Result<TcpStream> ConnectLocal(uint16_t port) {
    return Connect("127.0.0.1", port);
  }

  // Connects to host:port. `host` must be an IPv4 dotted-quad literal or
  // "localhost" — there is deliberately no resolver dependency here; the
  // daemon and its clients address each other numerically.
  static Result<TcpStream> Connect(std::string_view host, uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (host == "localhost") {
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else if (::inet_pton(AF_INET, std::string(host).c_str(),
                           &addr.sin_addr) != 1) {
      return Status::InvalidArgument("not an IPv4 literal: " +
                                     std::string(host));
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unavailable(std::string("socket: ") +
                                 std::strerror(errno));
    }
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      Status status = Status::Unavailable(std::string("connect: ") +
                                          std::strerror(errno));
      ::close(fd);
      return status;
    }
    return TcpStream(fd);
  }

  // One recv(); 0 bytes = orderly peer shutdown. Appends to `out`.
  Result<size_t> RecvSome(std::string& out, size_t max_bytes = 4096) {
    std::string buf(max_bytes, '\0');
    ssize_t n;
    do {
      n = ::recv(fd_, buf.data(), buf.size(), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      return Status::Unavailable(std::string("recv: ") +
                                 std::strerror(errno));
    }
    out.append(buf.data(), static_cast<size_t>(n));
    return static_cast<size_t>(n);
  }

  // Loops until exactly `len` bytes have been read into `out`. Typed
  // termination:
  //   - orderly peer close before the first byte  -> kNotFound ("clean"
  //     end of stream; between-frames close is not an error for callers
  //     draining a framed protocol)
  //   - orderly peer close mid-buffer             -> kDataLoss (truncated)
  //   - socket error                              -> kUnavailable
  Status RecvAll(char* out, size_t len) {
    size_t got = 0;
    while (got < len) {
      ssize_t n;
      do {
        n = ::recv(fd_, out + got, len - got, 0);
      } while (n < 0 && errno == EINTR);
      if (n < 0) {
        return Status::Unavailable(std::string("recv: ") +
                                   std::strerror(errno));
      }
      if (n == 0) {
        if (got == 0) return Status::NotFound("peer closed (end of stream)");
        return Status::DataLoss("peer closed mid-read after " +
                                std::to_string(got) + "/" +
                                std::to_string(len) + " bytes");
      }
      got += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  // Disables Nagle's algorithm. A framed request/response protocol writes
  // one small frame and then waits; without TCP_NODELAY every exchange
  // eats a delayed-ACK round trip.
  Status SetNoDelay(bool enabled = true) {
    int flag = enabled ? 1 : 0;
    if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) <
        0) {
      return Status::Unavailable(std::string("setsockopt(TCP_NODELAY): ") +
                                 std::strerror(errno));
    }
    return Status::Ok();
  }

  // Half-close helpers. ShutdownRead() wakes a thread blocked in recv()
  // on this fd (it sees end-of-stream) while letting queued writes flush —
  // the graceful-drain primitive. ShutdownBoth() also aborts writes.
  void ShutdownRead() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
  }
  void ShutdownBoth() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  // Loops until every byte of `data` is written (or the peer vanishes).
  Status SendAll(std::string_view data) {
    while (!data.empty()) {
      ssize_t n;
      do {
        n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) {
        return Status::Unavailable(std::string("send: ") +
                                   std::strerror(errno));
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::Ok();
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

// A listening socket bound to 127.0.0.1. Accept() blocks; Shutdown() from
// another thread wakes it with an error, which is how the telemetry
// server's accept loop is told to exit.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Shutdown(); }
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept {
    if (this != &other) {
      Shutdown();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds 127.0.0.1:port (0 = kernel-assigned ephemeral port; read the
  // outcome from port()) and starts listening. Loopback-only on purpose:
  // the scrape endpoint is diagnostics, not a public service.
  // `reuse_addr` keeps restarts from tripping over TIME_WAIT remnants of a
  // previous instance; tests that want to prove a port is genuinely busy
  // pass false.
  static Result<TcpListener> Listen(uint16_t port, int backlog = 16,
                                    bool reuse_addr = true) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unavailable(std::string("socket: ") +
                                 std::strerror(errno));
    }
    if (reuse_addr) {
      int reuse = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Status status = Status::Unavailable(std::string("bind: ") +
                                          std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (::listen(fd, backlog) < 0) {
      Status status = Status::Unavailable(std::string("listen: ") +
                                          std::strerror(errno));
      ::close(fd);
      return status;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      Status status = Status::Unavailable(std::string("getsockname: ") +
                                          std::strerror(errno));
      ::close(fd);
      return status;
    }
    TcpListener listener;
    listener.fd_ = fd;
    listener.port_ = ntohs(bound.sin_port);
    return listener;
  }

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  // Blocks for the next connection. After Shutdown() (from any thread)
  // the pending and all future Accepts return Unavailable.
  Result<TcpStream> Accept() {
    int client;
    do {
      client = ::accept(fd_, nullptr, nullptr);
    } while (client < 0 && errno == EINTR);
    if (client < 0) {
      return Status::Unavailable(std::string("accept: ") +
                                 std::strerror(errno));
    }
    return TcpStream(client);
  }

  // Wakes a blocked Accept and closes the listening socket. Idempotent.
  // shutdown() before close() so a concurrently-blocked accept returns
  // instead of the fd being silently reused under it.
  void Shutdown() {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace histwalk::util

#endif  // HISTWALK_UTIL_SOCKET_H_
