#ifndef HISTWALK_UTIL_TABLE_H_
#define HISTWALK_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

// Plain-text and CSV rendering of result tables. Every bench binary prints
// its figure/table through TextTable so the output matches the rows/series
// the paper reports and can be diffed or re-plotted from the CSV dump.

namespace histwalk::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> column_names);

  // Appends a row; the number of cells must equal the number of columns.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` significant decimals.
  static std::string Cell(double value, int precision = 4);
  static std::string Cell(uint64_t value);
  static std::string Cell(int64_t value);

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }
  const std::vector<std::string>& columns() const { return columns_; }

  // Aligned, human-readable rendering with a header rule.
  void Print(std::ostream& os) const;

  // RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string ToCsv() const;
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace histwalk::util

#endif  // HISTWALK_UTIL_TABLE_H_
