#ifndef HISTWALK_UTIL_CHECK_H_
#define HISTWALK_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// HW_CHECK aborts on broken invariants (programmer errors). It is always on;
// HW_DCHECK compiles away in NDEBUG builds. Recoverable conditions must use
// Status instead (util/status.h).

#define HW_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "HW_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                  \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#define HW_CHECK_MSG(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "HW_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                             \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define HW_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define HW_DCHECK(cond) HW_CHECK(cond)
#endif

#endif  // HISTWALK_UTIL_CHECK_H_
