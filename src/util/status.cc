#include "util/status.h"

namespace histwalk::util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kBudgetExhausted:
      return "budget_exhausted";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace histwalk::util
