#ifndef HISTWALK_UTIL_PARALLEL_H_
#define HISTWALK_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

// Minimal fork-join helper for embarrassingly parallel experiment loops
// (independent walk instances). Determinism is preserved by deriving each
// task's RNG from SubSeed(seed, task_index) inside the callback, so results
// do not depend on thread scheduling.

namespace histwalk::util {

// Runs fn(i) for i in [0, count) across up to `num_threads` threads
// (0 = hardware concurrency). Blocks until all tasks finish. fn must be
// safe to call concurrently for distinct i.
void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 unsigned num_threads = 0);

}  // namespace histwalk::util

#endif  // HISTWALK_UTIL_PARALLEL_H_
