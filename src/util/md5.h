#ifndef HISTWALK_UTIL_MD5_H_
#define HISTWALK_UTIL_MD5_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

// MD5 (RFC 1321), implemented from scratch.
//
// The paper's GNRW-By-MD5 grouping strategy assigns neighbors to strata by
// the MD5 hash of their user id; hashing the id destroys any correlation
// with attributes, making it the paper's "random grouping" baseline. MD5 is
// used here only as a deterministic mixing function, never for security.

namespace histwalk::util {

using Md5Digest = std::array<uint8_t, 16>;

// Digest of an arbitrary byte string.
Md5Digest Md5(std::string_view data);

// Lower-case hex rendering of a digest ("d41d8cd98f00b204e9800998ecf8427e").
std::string Md5Hex(std::string_view data);

// First 8 digest bytes as a big-endian integer; convenient for bucketing
// (e.g. Md5Uint64("12345") % num_groups).
uint64_t Md5Uint64(std::string_view data);

}  // namespace histwalk::util

#endif  // HISTWALK_UTIL_MD5_H_
