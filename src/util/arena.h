#ifndef HISTWALK_UTIL_ARENA_H_
#define HISTWALK_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstring>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

// Single-allocation refcounted array blocks — the access layer's storage
// for cached neighbor lists.
//
// A cached response used to be a shared_ptr<const vector<NodeId>>: one heap
// block for the control block + vector object (make_shared) and a second
// for the vector's data buffer, with the payload two pointer hops from the
// handle. BlockRef collapses that to ONE allocation: an intrusive atomic
// refcount, the element count, and the payload laid out contiguously. The
// pinned-handle lifetime contract is unchanged — copying a BlockRef bumps
// the refcount, so an evicted entry's payload stays valid for as long as
// any walker still holds a handle — but a hot Get now touches a single
// cache-resident block, and a miss pays one allocation instead of two.
//
// The element type must be trivially copyable and trivially destructible
// (graph::NodeId is), so blocks are filled with memcpy and freed without
// destructor walks.

namespace histwalk::util {

// The heap layout BlockRef points at: header + inline payload. Immutable
// after construction; only the refcount ever changes, atomically.
template <typename T>
class ArrayBlock {
 public:
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(std::is_trivially_destructible_v<T>);

  size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const T* data() const noexcept {
    return reinterpret_cast<const T*>(reinterpret_cast<const char*>(this) +
                                      kPayloadOffset);
  }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }
  const T& operator[](size_t i) const noexcept { return data()[i]; }
  std::span<const T> span() const noexcept { return {data(), size_}; }

  // Whole-allocation footprint (header + payload), for byte accounting.
  size_t allocated_bytes() const noexcept {
    return kPayloadOffset + size_ * sizeof(T);
  }

  friend bool operator==(const ArrayBlock& a, const ArrayBlock& b) {
    return a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(), a.size_ * sizeof(T)) == 0;
  }
  friend bool operator==(const ArrayBlock& a, const std::vector<T>& b) {
    return a.size_ == b.size() &&
           std::memcmp(a.data(), b.data(), a.size_ * sizeof(T)) == 0;
  }

 private:
  template <typename U>
  friend class BlockRef;

  // Payload starts at the first properly aligned offset past the header.
  static constexpr size_t kPayloadOffset =
      (sizeof(std::atomic<uint32_t>) + sizeof(uint32_t) + alignof(T) - 1) /
      alignof(T) * alignof(T);

  explicit ArrayBlock(uint32_t size) noexcept : refs_(1), size_(size) {}

  mutable std::atomic<uint32_t> refs_;
  uint32_t size_;
};

// Shared-ownership handle to an ArrayBlock. Drop-in for the null-checkable
// parts of the shared_ptr API the cache handles used (get, reset, operator*
// / ->, bool conversion, == nullptr); copying is an atomic increment.
template <typename T>
class BlockRef {
 public:
  constexpr BlockRef() noexcept = default;
  constexpr BlockRef(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  // The one way to make a non-null ref: copy `items` into a fresh
  // single-allocation block with refcount 1.
  static BlockRef Copy(std::span<const T> items) {
    const size_t offset = ArrayBlock<T>::kPayloadOffset;
    void* raw = ::operator new(offset + items.size() * sizeof(T));
    auto* block = new (raw) ArrayBlock<T>(static_cast<uint32_t>(items.size()));
    if (!items.empty()) {
      std::memcpy(static_cast<char*>(raw) + offset, items.data(),
                  items.size() * sizeof(T));
    }
    BlockRef ref;
    ref.block_ = block;
    return ref;
  }

  BlockRef(const BlockRef& other) noexcept : block_(other.block_) {
    if (block_ != nullptr) {
      block_->refs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  BlockRef(BlockRef&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  BlockRef& operator=(const BlockRef& other) noexcept {
    BlockRef copy(other);
    std::swap(block_, copy.block_);
    return *this;
  }
  BlockRef& operator=(BlockRef&& other) noexcept {
    std::swap(block_, other.block_);
    return *this;
  }
  ~BlockRef() { Release(); }

  void reset() noexcept {
    Release();
    block_ = nullptr;
  }

  const ArrayBlock<T>* get() const noexcept { return block_; }
  const ArrayBlock<T>& operator*() const noexcept { return *block_; }
  const ArrayBlock<T>* operator->() const noexcept { return block_; }
  explicit operator bool() const noexcept { return block_ != nullptr; }

  friend bool operator==(const BlockRef& ref, std::nullptr_t) {
    return ref.block_ == nullptr;
  }
  friend bool operator==(const BlockRef& a, const BlockRef& b) {
    return a.block_ == b.block_;
  }

 private:
  void Release() noexcept {
    if (block_ == nullptr) return;
    // acq_rel on the decrement: the release half publishes this holder's
    // last reads; the acquire half orders every prior decrement before the
    // final holder's deallocation. (release + a standalone acquire fence on
    // the final path is equivalent, but TSan does not model fences — the
    // acq_rel form keeps the concurrency suites TSan-clean at the cost of
    // an acquire on non-final decrements.)
    if (block_->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      block_->~ArrayBlock<T>();
      ::operator delete(const_cast<void*>(static_cast<const void*>(block_)));
    }
  }

  const ArrayBlock<T>* block_ = nullptr;
};

}  // namespace histwalk::util

#endif  // HISTWALK_UTIL_ARENA_H_
